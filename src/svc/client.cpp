#include "svc/client.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <span>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "io/retry.hpp"
#include "svc/monitor.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

// Platforms without MSG_NOSIGNAL (macOS) would need SO_NOSIGPIPE or a
// process-wide SIGPIPE ignore; on the targets we build for, the flag turns
// a vanished server into a plain EPIPE error instead of a fatal signal.
#if !defined(MSG_NOSIGNAL)
#define MSG_NOSIGNAL 0
#endif

namespace repro::svc {

namespace {

repro::Result<int> connect_unix(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string str = path.string();
  if (str.size() >= sizeof(addr.sun_path)) {
    return repro::invalid_argument("socket path too long: " + str);
  }
  std::memcpy(addr.sun_path, str.c_str(), str.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return repro::internal_error(std::string("socket: ") +
                                 std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return repro::unavailable("connect(" + str + "): " + std::strerror(err));
  }
  return fd;
}

repro::Result<int> connect_tcp(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return repro::invalid_argument("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return repro::internal_error(std::string("socket: ") +
                                 std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return repro::unavailable("connect(" + host + ":" +
                              std::to_string(port) +
                              "): " + std::strerror(err));
  }
  return fd;
}

repro::Result<int> connect_once(const ClientOptions& options) {
  return options.socket_path.empty()
             ? connect_tcp(options.host, options.port)
             : connect_unix(options.socket_path);
}

}  // namespace

ClientOptions endpoint_client_options(std::string_view endpoint,
                                      const ClientOptions& base) {
  ClientOptions options = base;
  options.socket_path.clear();
  options.port = 0;
  const std::size_t colon = endpoint.rfind(':');
  if (endpoint.find('/') != std::string_view::npos ||
      colon == std::string_view::npos) {
    options.socket_path = std::filesystem::path(endpoint);
    return options;
  }
  options.host = std::string(endpoint.substr(0, colon));
  options.port = static_cast<std::uint16_t>(
      std::strtoul(std::string(endpoint.substr(colon + 1)).c_str(),
                   nullptr, 10));
  return options;
}

repro::Result<Client> Client::connect(const ClientOptions& options) {
  // A refused or not-yet-bound socket at connect time is usually a startup
  // race against the daemon, not a dead daemon: retry with the policy's
  // capped backoff before giving up. Misconfiguration (bad address, too-long
  // path) fails immediately — no amount of waiting fixes it.
  static auto& connect_retries = [] () -> telemetry::Counter& {
    auto& registry = telemetry::MetricsRegistry::global();
    registry.describe("svc.client.connect_retries",
                      "client connect attempts retried after a transient "
                      "connect failure");
    return registry.counter("svc.client.connect_retries");
  }();
  const io::RetryPolicy& policy = options.connect_retry;
  const unsigned attempts = std::max(1u, policy.max_attempts);
  repro::Result<int> fd = connect_once(options);
  for (unsigned attempt = 1; !fd.is_ok() && attempt < attempts; ++attempt) {
    if (fd.status().code() == repro::StatusCode::kInvalidArgument) break;
    connect_retries.increment();
    io::backoff_sleep(policy, attempt);
    fd = connect_once(options);
  }
  REPRO_RETURN_IF_ERROR(fd.status());
  ::fcntl(fd.value(), F_SETFD, FD_CLOEXEC);
  return Client(fd.value(), options);
}

Client::Client(Client&& other) noexcept
    : options_(std::move(other.options_)),
      fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_),
      rx_(std::move(other.rx_)),
      chunk_rx_(std::move(other.chunk_rx_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    options_ = std::move(other.options_);
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
    rx_ = std::move(other.rx_);
    chunk_rx_ = std::move(other.chunk_rx_);
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

repro::Status Client::send_request(Opcode op, std::uint64_t request_id,
                                   std::string_view payload, bool json,
                                   const WireTraceContext* trace) {
  if (fd_ < 0) return repro::failed_precondition("client is closed");
  std::vector<std::uint8_t> frame;
  append_request(frame, op, request_id, payload, json, trace);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    // A zero return leaves errno stale; bail out rather than misread it
    // (or spin on a blocking socket that is making no progress).
    if (n == 0) return repro::unavailable("send: no progress");
    if (io::errno_is_interrupt(errno)) continue;
    return repro::unavailable(std::string("send: ") + std::strerror(errno));
  }
  return repro::Status::ok();
}

repro::Result<Response> Client::recv_response() {
  if (fd_ < 0) return repro::failed_precondition("client is closed");
  const auto deadline =
      std::chrono::steady_clock::now() + options_.timeout;
  while (true) {
    DecodedFrame frame;
    const auto outcome = decode_frame(
        std::span<const std::uint8_t>(rx_.data(), rx_.size()),
        options_.max_frame_bytes, &frame);
    if (outcome == DecodeOutcome::kFrame) {
      rx_.erase(rx_.begin(),
                rx_.begin() + static_cast<std::ptrdiff_t>(frame.frame_bytes));
      if (frame.header.is_response() &&
          frame.header.code ==
              static_cast<std::uint16_t>(Opcode::kTimelineChunk)) {
        // One slice of a streamed response. Other responses may interleave
        // between a stream's chunks, so slices accumulate per request id
        // until the final-chunk frame completes the reassembly.
        ChunkAccum& accum = chunk_rx_[frame.header.request_id];
        accum.payload += frame.payload;
        ++accum.chunks;
        if ((frame.header.flags & kFlagFinalChunk) == 0) continue;
        Response response;
        response.status = WireStatus::kOk;
        response.request_id = frame.header.request_id;
        response.payload = std::move(accum.payload);
        response.chunks = accum.chunks;
        chunk_rx_.erase(frame.header.request_id);
        return response;
      }
      Response response;
      response.status = static_cast<WireStatus>(frame.header.code);
      response.request_id = frame.header.request_id;
      response.payload = std::move(frame.payload);
      return response;
    }
    if (outcome != DecodeOutcome::kNeedMoreData) {
      return repro::internal_error("malformed response frame from server");
    }

    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return repro::unavailable("timed out waiting for response");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (io::errno_is_interrupt(errno)) continue;
      return repro::internal_error(std::string("poll: ") +
                                   std::strerror(errno));
    }
    if (ready == 0) {
      return repro::unavailable("timed out waiting for response");
    }
    std::uint8_t buf[64 * 1024];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      rx_.insert(rx_.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      return repro::unavailable("server closed the connection");
    }
    if (io::errno_is_interrupt(errno)) continue;
    return repro::unavailable(std::string("recv: ") + std::strerror(errno));
  }
}

repro::Result<Response> Client::call(Opcode op, std::string_view payload,
                                     bool json) {
  const std::uint64_t request_id = next_request_id_++;
  // The client-side request span is the root of the distributed trace: its
  // identity rides to the daemon in the trace-context trailer, where the
  // handler span adopts the trace id and links under this span. With
  // tracing disabled new_root() is invalid, no trailer is sent, and the
  // wire bytes are identical to a trailer-less peer's.
  telemetry::TraceSpan span("svc.client.call",
                            telemetry::TraceContext::new_root());
  span.arg("op", opcode_name(op)).arg("id", request_id);
  WireTraceContext trace;
  const telemetry::TraceContext ctx = span.context();
  if (ctx.valid()) {
    trace.trace_lo = ctx.trace_lo;
    trace.trace_hi = ctx.trace_hi;
    trace.parent_span_id = ctx.span_id;
  }
  REPRO_RETURN_IF_ERROR(send_request(op, request_id, payload, json,
                                     trace.valid() ? &trace : nullptr));
  // Responses on this connection are matched by request id; call() keeps
  // one request outstanding, so the next frame is ours — but skip any
  // stale frame defensively (a timed-out predecessor's late reply).
  while (true) {
    REPRO_ASSIGN_OR_RETURN(Response response, recv_response());
    if (response.request_id == request_id || response.request_id == 0) {
      span.arg("status", wire_status_name(response.status));
      return response;
    }
  }
}

repro::Result<Response> Client::watch_open(std::string_view json_payload) {
  return call(Opcode::kWatchOpen, json_payload);
}

repro::Result<Response> Client::watch_push(const WatchPushFrame& frame) {
  std::vector<std::uint8_t> payload;
  encode_watch_push(payload, frame);
  return call(Opcode::kWatchPush,
              std::string_view(reinterpret_cast<const char*>(payload.data()),
                               payload.size()),
              /*json=*/false);
}

repro::Result<Response> Client::watch_close() {
  return call(Opcode::kWatchClose, {});
}

// ---- FabricClient ---------------------------------------------------------

FabricClient::FabricClient(FabricOptions options)
    : options_(std::move(options)), ring_(options_.workers) {}

repro::Result<FabricClient> FabricClient::connect(FabricOptions options) {
  if (options.workers.empty()) {
    return repro::invalid_argument("fabric client needs at least one worker");
  }
  // Connections are opened lazily on first use per endpoint; validating the
  // ring here keeps construction infallible afterwards.
  return FabricClient(std::move(options));
}

std::string FabricClient::endpoint_for(std::string_view payload) const {
  const RingWorker* worker = ring_.owner(routing_key(payload));
  return worker == nullptr ? std::string() : worker->endpoint;
}

repro::Result<Response> FabricClient::call(Opcode op,
                                           std::string_view payload,
                                           bool json) {
  const std::string key = routing_key(payload);
  const auto now = std::chrono::steady_clock::now();
  repro::Status last = repro::unavailable("no live worker for shard");
  // Walk the key's deterministic failover order: the owner first, then the
  // rendezvous runners-up. Workers inside their down-backoff window are
  // skipped on the first pass; if that leaves nothing to try (every worker
  // marked down), retry everyone once rather than failing attempt-free.
  const auto ranked = ring_.ranked(key);
  bool attempted = false;
  for (const bool respect_down_marks : {true, false}) {
    for (const RingWorker* worker : ranked) {
      Upstream& upstream = upstreams_[worker->endpoint];
      if (respect_down_marks && !upstream.client.has_value() &&
          upstream.down_until > now) {
        continue;
      }
      attempted = true;
      if (!upstream.client.has_value()) {
        auto connected = Client::connect(
            endpoint_client_options(worker->endpoint, options_.base));
        if (!connected.is_ok()) {
          last = connected.status();
          upstream.down_until = now + options_.down_backoff;
          continue;
        }
        upstream.client.emplace(std::move(connected).value());
      }
      repro::Result<Response> response =
          upstream.client->call(op, payload, json);
      if (response.is_ok()) return response;
      // Transport failure: drop the cached connection, mark the worker
      // down, and fail over. Wire-level error statuses (NOT_FOUND and
      // friends) arrive as decoded frames and never reach this path.
      last = response.status();
      upstream.client.reset();
      upstream.down_until = now + options_.down_backoff;
    }
    if (attempted) break;
  }
  return last;
}

}  // namespace repro::svc
