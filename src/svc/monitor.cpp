#include "svc/monitor.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "ckpt/history.hpp"
#include "common/build_info.hpp"
#include "common/json.hpp"
#include "common/log.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/metrics.hpp"

namespace repro::svc {

namespace {

// ---------------------------------------------------------------------------
// Telemetry sites (registered once, process lifetime). The detection-latency
// pair is the SLO of the monitoring plane: wall microseconds (and reference-
// gap iterations) between a divergent push arriving and its alert existing.

std::span<const double> iters_buckets() noexcept {
  static const double buckets[] = {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0};
  return buckets;
}

struct WatchMetrics {
  telemetry::Gauge& sessions;
  telemetry::Gauge& buffered_bytes;
  telemetry::Counter& pushes;
  telemetry::Counter& alerts;
  telemetry::Histogram& push_latency_us;
  telemetry::Histogram& detection_latency_us;
  telemetry::Histogram& detection_latency_iters;

  static WatchMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static WatchMetrics* metrics = new WatchMetrics{
        registry.gauge("svc.watch.sessions"),
        registry.gauge("svc.watch.buffered_bytes"),
        registry.counter("svc.watch.pushes"),
        registry.counter("svc.watch.alerts_total"),
        registry.histogram("svc.watch.push_latency_us",
                           telemetry::micros_buckets()),
        registry.histogram("svc.watch.detection_latency_us",
                           telemetry::micros_buckets()),
        registry.histogram("svc.watch.detection_latency_iters",
                           iters_buckets()),
    };
    return *metrics;
  }
};

// ---------------------------------------------------------------------------
// Payload plumbing (little-endian codec + JSON emission helpers).

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((value >> shift) & 0xff));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i) value = (value << 8) | p[i];
  return value;
}

void append_kv(std::string& out, std::string_view key, std::uint64_t value,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  json_append_string(out, key);
  out += ':';
  json_append_number(out, value);
}

void append_kv(std::string& out, std::string_view key, double value,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  json_append_string(out, key);
  out += ':';
  json_append_number(out, value);
}

void append_kv(std::string& out, std::string_view key, std::string_view value,
               bool* first) {
  if (!*first) out += ',';
  *first = false;
  json_append_string(out, key);
  out += ':';
  json_append_string(out, value);
}

void append_kv_bool(std::string& out, std::string_view key, bool value,
                    bool* first) {
  if (!*first) out += ',';
  *first = false;
  json_append_string(out, key);
  out += ':';
  out += value ? "true" : "false";
}

std::string error_payload(std::string_view message) {
  std::string out = "{\"error\":";
  json_append_string(out, message);
  out += '}';
  return out;
}

WatchReply bad_request(std::string_view message) {
  return {WireStatus::kBadRequest, error_payload(message)};
}

}  // namespace

// ---------------------------------------------------------------------------
// WATCH_PUSH payload codec.

void encode_watch_push(std::vector<std::uint8_t>& out,
                       const WatchPushFrame& frame) {
  out.reserve(out.size() + kWatchPushHeaderBytes +
              frame.entries.size() * kWatchPushEntryBytes);
  put_u64(out, frame.iteration);
  put_u32(out, frame.delta ? kWatchPushFlagDelta : 0);
  put_u32(out, static_cast<std::uint32_t>(frame.entries.size()));
  for (const merkle::DeltaNode& entry : frame.entries) {
    put_u64(out, entry.index);
    put_u64(out, entry.digest.lo);
    put_u64(out, entry.digest.hi);
  }
}

repro::Result<WatchPushFrame> decode_watch_push(
    std::span<const std::uint8_t> payload, std::uint64_t max_entries) {
  if (payload.size() < kWatchPushHeaderBytes) {
    return repro::invalid_argument("WATCH_PUSH payload truncated");
  }
  WatchPushFrame frame;
  frame.iteration = get_u64(payload.data());
  const std::uint32_t flags = get_u32(payload.data() + 8);
  frame.delta = (flags & kWatchPushFlagDelta) != 0;
  const std::uint64_t count = get_u32(payload.data() + 12);
  if (count == 0) {
    return repro::invalid_argument("WATCH_PUSH carries no entries");
  }
  if (count > max_entries) {
    return repro::invalid_argument("WATCH_PUSH entry count exceeds cap");
  }
  if (payload.size() !=
      kWatchPushHeaderBytes + count * kWatchPushEntryBytes) {
    return repro::invalid_argument(
        "WATCH_PUSH entry count disagrees with payload size");
  }
  frame.entries.resize(count);
  const std::uint8_t* p = payload.data() + kWatchPushHeaderBytes;
  for (std::uint64_t i = 0; i < count; ++i, p += kWatchPushEntryBytes) {
    frame.entries[i].index = get_u64(p);
    frame.entries[i].digest.lo = get_u64(p + 8);
    frame.entries[i].digest.hi = get_u64(p + 16);
    if (i > 0 && frame.entries[i].index <= frame.entries[i - 1].index) {
      return repro::invalid_argument(
          "WATCH_PUSH entries not strictly ascending by node index");
    }
  }
  return frame;
}

// ---------------------------------------------------------------------------
// Session state.

struct Monitor::Session {
  std::string root;
  std::string run;
  std::string reference;
  std::uint32_t rank = 0;
  double error_bound = 0;
  merkle::TreeParams params;
  std::uint64_t data_bytes = 0;
  std::uint64_t num_leaves = 0;

  merkle::MerkleTree frontier;  ///< valid once has_frontier
  bool has_frontier = false;
  std::uint64_t last_iteration = 0;

  std::uint64_t pushes = 0;
  std::uint64_t compared = 0;
  std::uint64_t skipped = 0;  ///< pushes with no reference sidecar yet
  /// Consecutive reference-gap iterations immediately before now: how many
  /// iterations a divergence could have hidden in. Feeds the alert's
  /// detection_latency_iters; 0 when every push was compared.
  std::uint64_t unverified_streak = 0;
  bool alerted = false;
  std::uint64_t alert_iteration = 0;

  /// Content-addressed dedup accounting over every digest this session
  /// pushed; the close summary reports how compressible the stream was.
  merkle::NodeStore store;

  [[nodiscard]] std::uint64_t frontier_bytes() const noexcept {
    return has_frontier ? frontier.nodes().size() * hash::kDigestBytes : 0;
  }
};

// ---------------------------------------------------------------------------
// Monitor.

Monitor::Monitor(MonitorOptions options, MetadataCache* cache)
    : options_(std::move(options)), cache_(cache) {
  // Register the svc.watch.* instruments at construction so a freshly
  // started daemon's exposition already carries every series (flat at
  // zero), not just after the first WATCH verb arrives.
  publish_gauges();
}

Monitor::~Monitor() = default;

void Monitor::publish_gauges() {
  WatchMetrics::get().sessions.set(static_cast<double>(sessions_.size()));
  WatchMetrics::get().buffered_bytes.set(
      static_cast<double>(buffered_bytes_));
}

WatchReply Monitor::open(std::uint64_t conn_id,
                         const std::string& json_payload,
                         const telemetry::TraceContext& parent) {
  telemetry::TraceSpan span("svc.watch.open", parent);
  if (sessions_.find(conn_id) != sessions_.end()) {
    return bad_request("watch session already open on this connection");
  }
  if (sessions_.size() >= options_.max_sessions) {
    return {WireStatus::kTooManyRequests,
            error_payload("watch session cap reached")};
  }
  const auto parsed = telemetry::json_parse(
      json_payload.empty() ? std::string_view("{}")
                           : std::string_view(json_payload));
  if (!parsed.has_value() || !parsed->is_object()) {
    return bad_request("WATCH_OPEN payload is not a JSON object");
  }
  auto session = std::make_unique<Session>();
  session->root = parsed->string_or("root", "");
  session->run = parsed->string_or("run", "");
  session->reference = parsed->string_or("reference", "");
  session->rank = static_cast<std::uint32_t>(parsed->u64_or("rank", 0));
  session->data_bytes = parsed->u64_or("data_bytes", 0);
  if (session->root.empty() || session->run.empty() ||
      session->reference.empty()) {
    return bad_request("WATCH_OPEN needs root, run, and reference");
  }
  if (session->data_bytes == 0) {
    return bad_request("WATCH_OPEN needs data_bytes > 0");
  }
  session->params = options_.compare.tree;
  session->params.chunk_bytes =
      parsed->u64_or("chunk_bytes", session->params.chunk_bytes);
  session->params.hash.values_per_block = static_cast<std::uint32_t>(
      parsed->u64_or("values_per_block", session->params.hash.values_per_block));
  session->error_bound =
      parsed->number_or("eps", options_.compare.error_bound);
  session->params.hash.error_bound = session->error_bound;
  if (const auto valid = merkle::validate(session->params); !valid.is_ok()) {
    return bad_request(valid.to_string());
  }
  session->num_leaves =
      (session->data_bytes + session->params.chunk_bytes - 1) /
      session->params.chunk_bytes;

  std::string out = "{";
  bool first = true;
  append_kv(out, "watching", session->run, &first);
  append_kv(out, "reference", session->reference, &first);
  append_kv(out, "rank", std::uint64_t{session->rank}, &first);
  append_kv(out, "chunk_bytes", session->params.chunk_bytes, &first);
  append_kv(out, "num_leaves", session->num_leaves, &first);
  append_kv(out, "eps", session->error_bound, &first);
  out += '}';
  sessions_.emplace(conn_id, std::move(session));
  publish_gauges();
  return {WireStatus::kOk, std::move(out)};
}

WatchReply Monitor::push(std::uint64_t conn_id, const std::string& payload,
                         const telemetry::TraceContext& parent) {
  const Stopwatch push_clock;
  auto it = sessions_.find(conn_id);
  if (it == sessions_.end()) {
    return bad_request("no watch session open on this connection");
  }
  Session& session = *it->second;

  auto decoded = decode_watch_push(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(payload.data()),
          payload.size()),
      options_.max_push_entries);
  if (!decoded.is_ok()) return bad_request(decoded.status().to_string());
  WatchPushFrame& frame = decoded.value();

  // Iterations must be strictly increasing: the frontier is a chain of
  // deltas, so a replayed or reordered iteration cannot be applied.
  if (session.pushes > 0 && frame.iteration <= session.last_iteration) {
    return bad_request("out-of-order WATCH_PUSH iteration");
  }

  const merkle::TreeLayout layout =
      merkle::TreeLayout::for_leaves(session.num_leaves);
  merkle::MerkleTree next;
  if (!frame.delta) {
    // Full frontier: the entries must be the complete node array.
    if (frame.entries.size() != layout.num_nodes() ||
        frame.entries.front().index != 0 ||
        frame.entries.back().index != layout.num_nodes() - 1) {
      return bad_request(
          "full WATCH_PUSH must carry the complete node array");
    }
    std::vector<hash::Digest128> nodes(frame.entries.size());
    for (std::size_t i = 0; i < frame.entries.size(); ++i) {
      nodes[i] = frame.entries[i].digest;
    }
    auto built =
        merkle::MerkleTree::from_parts(session.params, session.data_bytes,
                                       session.num_leaves, std::move(nodes));
    if (!built.is_ok()) return bad_request(built.status().to_string());
    next = std::move(built.value());
  } else {
    if (!session.has_frontier) {
      return bad_request("first WATCH_PUSH must carry a full frontier");
    }
    merkle::TreeDelta delta;
    delta.iteration = frame.iteration;
    delta.base_iteration = session.last_iteration;
    delta.params = session.params;
    delta.data_bytes = session.data_bytes;
    delta.num_leaves = session.num_leaves;
    delta.nodes = std::move(frame.entries);
    auto applied = merkle::apply_tree_delta(session.frontier, delta);
    if (!applied.is_ok()) return bad_request(applied.status().to_string());
    next = std::move(applied.value());
    frame.entries = std::move(delta.nodes);  // for the dedup accounting below
  }

  for (const merkle::DeltaNode& entry : frame.entries) {
    session.store.insert(entry.digest);
  }
  buffered_bytes_ -= session.frontier_bytes();
  session.frontier = std::move(next);
  session.has_frontier = true;
  session.last_iteration = frame.iteration;
  ++session.pushes;
  buffered_bytes_ += session.frontier_bytes();
  publish_gauges();
  WatchMetrics::get().pushes.increment();

  WatchReply reply;
  {
    // Linked child of the server's svc.watch span (itself linked under the
    // client's request span when the frame carried a trailer): the compare
    // is the expensive part of a push, worth its own slice in the merged
    // timeline.
    telemetry::TraceSpan compare_span("svc.watch.compare", parent);
    compare_span.arg("iteration", frame.iteration);
    reply = compare_iteration(session, frame.iteration, push_clock);
    compare_span.arg("status", wire_status_name(reply.status));
  }
  WatchMetrics::get().push_latency_us.record(push_clock.seconds() * 1e6);
  return reply;
}

WatchReply Monitor::compare_iteration(Session& session,
                                      std::uint64_t iteration,
                                      const Stopwatch& push_clock) {
  const ckpt::HistoryCatalog catalog(session.root);
  const ckpt::CheckpointRef ref =
      catalog.ref(session.reference, iteration, session.rank);

  std::string out = "{";
  bool first = true;
  append_kv(out, "iteration", iteration, &first);

  if (!ref.has_metadata()) {
    // The reference run has not captured this iteration (yet): record the
    // gap — a divergence here is only detectable later — and stay open.
    ++session.skipped;
    ++session.unverified_streak;
    append_kv(out, "verdict", "no-reference", &first);
    append_kv(out, "chunks_total", session.num_leaves, &first);
    append_kv_bool(out, "first_divergence", false, &first);
    append_kv_bool(out, "alerted", session.alerted, &first);
    out += '}';
    return {WireStatus::kOk, std::move(out)};
  }

  const SidecarKey sidecar = sidecar_cache_key(ref.metadata_path);
  bool hit = false;
  auto bundle = cache_->get_or_load(
      sidecar.key,
      [&] { return open_sidecar(ref.metadata_path, sidecar.differential); },
      &hit);
  if (!bundle.is_ok()) {
    return {WireStatus::kInternal,
            error_payload(bundle.status().to_string())};
  }
  auto ref_tree = bundle.value()->sole_tree();
  if (!ref_tree.is_ok()) {
    return {WireStatus::kInternal,
            error_payload(ref_tree.status().to_string())};
  }
  const merkle::TreeView& theirs = ref_tree.value();
  if (theirs.layout().num_leaves != session.num_leaves ||
      theirs.params().chunk_bytes != session.params.chunk_bytes) {
    return bad_request(
        "watched frontier geometry does not match the reference sidecar");
  }

  const merkle::TreeView mine(session.frontier);
  std::uint64_t flagged = 0;
  std::uint64_t first_chunk = 0;
  const bool clean = mine.root() == theirs.root();
  if (!clean) {
    bool first_seen = false;
    for (std::uint64_t chunk = 0; chunk < session.num_leaves; ++chunk) {
      if (mine.leaf(chunk) == theirs.leaf(chunk)) continue;
      ++flagged;
      if (!first_seen) {
        first_seen = true;
        first_chunk = chunk;
      }
    }
  }
  ++session.compared;

  const bool first_divergence = !clean && !session.alerted;
  if (first_divergence) {
    const std::uint64_t latency_iters = session.unverified_streak;
    const double latency_us = push_clock.seconds() * 1e6;
    session.alerted = true;
    session.alert_iteration = iteration;
    emit_alert(session, iteration, flagged, session.num_leaves, first_chunk,
               latency_iters, latency_us);
    WatchMetrics::get().alerts.increment();
    WatchMetrics::get().detection_latency_us.record(latency_us);
    WatchMetrics::get().detection_latency_iters.record(
        static_cast<double>(latency_iters));
  }
  session.unverified_streak = 0;

  append_kv(out, "verdict", clean ? "clean" : "divergent", &first);
  append_kv(out, "chunks_total", session.num_leaves, &first);
  append_kv(out, "chunks_flagged", flagged, &first);
  if (!clean) append_kv(out, "first_divergent_chunk", first_chunk, &first);
  append_kv_bool(out, "first_divergence", first_divergence, &first);
  append_kv_bool(out, "alerted", session.alerted, &first);
  append_kv_bool(out, "cache_hit", hit, &first);
  out += '}';
  return {WireStatus::kOk, std::move(out)};
}

void Monitor::emit_alert(const Session& session, std::uint64_t iteration,
                         std::uint64_t chunks_flagged,
                         std::uint64_t chunks_total,
                         std::uint64_t first_divergent_chunk,
                         std::uint64_t latency_iters, double latency_us) {
  if (options_.alert_path.empty()) return;
  // One self-contained line per alert (schema "repro.divergence.alert" v1,
  // docs/FORMATS.md): unlike the ledger's header-then-records shape, every
  // record repeats the schema + provenance header so appends from many
  // sessions — or many daemon lifetimes — interleave into one valid file.
  const BuildInfo build = repro::build_info();
  std::string line = "{\"schema\":";
  json_append_string(line, "repro.divergence.alert");
  line += ",\"version\":1";
  bool first = false;  // continuing after the version field
  append_kv(line, "run", session.run, &first);
  append_kv(line, "reference", session.reference, &first);
  append_kv(line, "rank", std::uint64_t{session.rank}, &first);
  append_kv(line, "iteration", iteration, &first);
  append_kv(line, "error_bound", session.error_bound, &first);
  append_kv(line, "chunks_flagged", chunks_flagged, &first);
  append_kv(line, "chunks_total", chunks_total, &first);
  append_kv(line, "first_divergent_chunk", first_divergent_chunk, &first);
  append_kv(line, "detection_latency_iters", latency_iters, &first);
  append_kv(line, "detection_latency_us", latency_us, &first);
  line += ",\"provenance\":{";
  bool prov = true;
  append_kv(line, "compiler", build.compiler, &prov);
  append_kv(line, "build_type", build.build_type, &prov);
  append_kv(line, "version", build.version, &prov);
  append_kv(line, "simd_level", build.simd_level, &prov);
  line += "}}\n";

  // Plain append, not an atomic whole-file publish: the file is a log that
  // outlives any single session, and a torn tail line is detectable (no
  // trailing newline) without invalidating earlier records.
  std::FILE* f = std::fopen(options_.alert_path.string().c_str(), "ab");
  if (f == nullptr ||
      std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
    REPRO_LOG_WARN << "divergence alert write to "
                   << options_.alert_path.string() << " failed";
  }
  if (f != nullptr) std::fclose(f);
}

WatchReply Monitor::close(std::uint64_t conn_id) {
  auto it = sessions_.find(conn_id);
  if (it == sessions_.end()) {
    return bad_request("no watch session open on this connection");
  }
  const Session& session = *it->second;
  const merkle::NodeStore::Stats& store = session.store.stats();
  std::string out = "{";
  bool first = true;
  append_kv(out, "iterations_pushed", session.pushes, &first);
  append_kv(out, "compared", session.compared, &first);
  append_kv(out, "skipped_no_reference", session.skipped, &first);
  append_kv_bool(out, "alerted", session.alerted, &first);
  if (session.alerted) {
    append_kv(out, "alert_iteration", session.alert_iteration, &first);
  }
  append_kv(out, "unique_nodes", store.unique_nodes, &first);
  append_kv(out, "node_inserts", store.inserts, &first);
  append_kv(out, "dedup_ratio", store.dedup_ratio(), &first);
  out += '}';
  buffered_bytes_ -= session.frontier_bytes();
  sessions_.erase(it);
  publish_gauges();
  return {WireStatus::kOk, std::move(out)};
}

void Monitor::drop(std::uint64_t conn_id) {
  auto it = sessions_.find(conn_id);
  if (it == sessions_.end()) return;
  buffered_bytes_ -= it->second->frontier_bytes();
  sessions_.erase(it);
  publish_gauges();
}

}  // namespace repro::svc
