// Length-prefixed binary frame protocol spoken between `repro-cli serve`
// and its clients (docs/SERVICE.md, docs/FORMATS.md "Wire frames").
//
// Every message — request or response — is one frame:
//
//   offset  size  field
//   0       4     magic "RSVC"
//   4       2     version (little-endian u16, currently 1)
//   6       2     code    (request: Opcode; response: WireStatus)
//   8       4     flags   (bit 0: response, bit 1: payload is JSON)
//   12      4     payload_bytes
//   16      8     request_id (echoed verbatim in the response)
//   24      payload_bytes of payload
//
// All integers are little-endian regardless of host order. The fixed-size
// header makes framing trivial to validate before any payload is buffered:
// a reader can reject garbage (bad magic/version) after 8 bytes and
// oversized frames after 16, without allocating payload space — the
// daemon's first line of defense against malformed or hostile peers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro::svc {

inline constexpr std::uint8_t kWireMagic[4] = {'R', 'S', 'V', 'C'};
inline constexpr std::uint16_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Default cap on one frame's total size (header + payload). Requests are
/// small JSON documents; responses are bounded reports. Anything larger is
/// a protocol violation, not a big request.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

inline constexpr std::uint32_t kFlagResponse = 1u << 0;
inline constexpr std::uint32_t kFlagJsonPayload = 1u << 1;

enum class Opcode : std::uint16_t {
  kPing = 1,      ///< liveness probe; empty payload
  kLoadRun = 2,   ///< pre-warm the metadata cache with one run's sidecars
  kCompare = 3,   ///< two-stage compare of one checkpoint pair
  kTimeline = 4,  ///< first-divergence sweep over two runs' histories
  kStats = 5,     ///< cache + request counters
  kShutdown = 6,  ///< begin graceful drain
  // RSVC v2 verb set: live divergence monitoring (docs/SERVICE.md).
  kWatchOpen = 7,   ///< open a watch session against a reference run
  kWatchPush = 8,   ///< push one iteration's digests (binary RMFD entries)
  kWatchClose = 9,  ///< close the watch session; summary reply
  kMetrics = 10,    ///< Prometheus 0.0.4 text exposition of the registry
};

enum class WireStatus : std::uint16_t {
  kOk = 0,
  kBadRequest = 1,       ///< malformed payload / unknown opcode
  kNotFound = 2,         ///< named run / checkpoint does not exist
  kTooManyRequests = 3,  ///< per-client in-flight cap hit (backpressure)
  kDeadlineExceeded = 4, ///< request timed out server-side
  kShuttingDown = 5,     ///< daemon is draining; retry against a new one
  kInternal = 6,         ///< handler failed; payload carries the status
};

[[nodiscard]] const char* opcode_name(Opcode op) noexcept;
[[nodiscard]] const char* wire_status_name(WireStatus status) noexcept;

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  std::uint16_t code = 0;
  std::uint32_t flags = 0;
  std::uint32_t payload_bytes = 0;
  std::uint64_t request_id = 0;

  [[nodiscard]] bool is_response() const noexcept {
    return (flags & kFlagResponse) != 0;
  }
};

/// Appends one complete frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out, const FrameHeader& header,
                  std::string_view payload);

/// Request frame: code = opcode, JSON payload flag set when non-empty and
/// `json` (WATCH_PUSH requests carry a binary digest payload instead).
void append_request(std::vector<std::uint8_t>& out, Opcode op,
                    std::uint64_t request_id, std::string_view payload,
                    bool json = true);

/// Response frame: code = status, response flag set. `json` controls the
/// payload-format flag: METRICS replies carry Prometheus text, not JSON.
void append_response(std::vector<std::uint8_t>& out, WireStatus status,
                     std::uint64_t request_id, std::string_view payload,
                     bool json = true);

struct DecodedFrame {
  FrameHeader header;
  std::string payload;
  /// Total bytes consumed from the buffer (header + payload).
  std::size_t frame_bytes = 0;
};

enum class DecodeOutcome {
  kNeedMoreData,  ///< prefix is consistent, frame incomplete
  kFrame,         ///< one complete frame decoded into *frame
  kBadMagic,      ///< stream is not speaking this protocol
  kBadVersion,    ///< protocol version mismatch
  kOversized,     ///< declared size exceeds max_frame_bytes; decoded header
                  ///< fields are valid in *frame for error replies
                  ///< (request_id when its 8 bytes have arrived, else 0)
};

/// Attempts to decode one frame from the front of `buffer`. Garbage is
/// detected as early as the prefix allows: magic after 4 bytes, version
/// after 6, oversize after 16 — before any payload accumulates.
[[nodiscard]] DecodeOutcome decode_frame(std::span<const std::uint8_t> buffer,
                                         std::uint32_t max_frame_bytes,
                                         DecodedFrame* frame);

}  // namespace repro::svc
