// Length-prefixed binary frame protocol spoken between `repro-cli serve`
// and its clients (docs/SERVICE.md, docs/FORMATS.md "Wire frames").
//
// Every message — request or response — is one frame:
//
//   offset  size  field
//   0       4     magic "RSVC"
//   4       2     version (little-endian u16, currently 2; v1 frames are
//                          still accepted — v2 only adds the TIMELINE_CHUNK
//                          continuation frame and the final-chunk flag)
//   6       2     code    (request: Opcode; response: WireStatus;
//                          chunked-response continuation: Opcode
//                          kTimelineChunk with the response flag set)
//   8       4     flags   (bit 0: response, bit 1: payload is JSON,
//                          bit 2: trace-context trailer follows payload,
//                          bit 3: final chunk of a streamed response)
//   12      4     payload_bytes (payload only; excludes the trailer)
//   16      8     request_id (echoed verbatim in the response)
//   24      payload_bytes of payload
//   +0      24    optional trace-context trailer (only when bit 2 is set):
//                 trace_id lo u64, trace_id hi u64, parent_span_id u64
//
// All integers are little-endian regardless of host order. The fixed-size
// header makes framing trivial to validate before any payload is buffered:
// a reader can reject garbage (bad magic/version) after 8 bytes and
// oversized frames after 16, without allocating payload space — the
// daemon's first line of defense against malformed or hostile peers.
// The trailer is strictly optional: peers that never set kFlagTraceContext
// interoperate with trace-aware peers unchanged, and the flags field is
// decodable from the same 16-byte prefix, so the early oversize rejection
// accounts for trailer bytes too.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro::svc {

inline constexpr std::uint8_t kWireMagic[4] = {'R', 'S', 'V', 'C'};
inline constexpr std::uint16_t kWireVersion = 2;
/// Oldest protocol revision decode_frame still accepts. v1 peers never emit
/// chunked responses, so their byte streams parse identically under v2.
inline constexpr std::uint16_t kWireMinVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 24;

/// Default cap on one frame's total size (header + payload). Requests are
/// small JSON documents; responses are bounded reports. Anything larger is
/// a protocol violation, not a big request.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 16u << 20;

inline constexpr std::uint32_t kFlagResponse = 1u << 0;
inline constexpr std::uint32_t kFlagJsonPayload = 1u << 1;
/// A 24-byte trace-context trailer follows the payload.
inline constexpr std::uint32_t kFlagTraceContext = 1u << 2;
/// Marks the last TIMELINE_CHUNK frame of a streamed response. A streamed
/// response is a run of kTimelineChunk frames sharing one request id whose
/// payload slices concatenate to the full (JSON) reply; every frame but the
/// last has this bit clear. Single-frame responses never set it.
inline constexpr std::uint32_t kFlagFinalChunk = 1u << 3;

/// Size of the optional trace-context trailer.
inline constexpr std::size_t kTraceContextBytes = 24;

/// Wire form of a propagated trace context: a 128-bit trace id plus the
/// sender's span id (which becomes the receiver's parent span). A context
/// with an all-zero trace id is meaningless; encoders must not emit one and
/// decoders reject it (DecodeOutcome::kBadTraceContext).
struct WireTraceContext {
  std::uint64_t trace_lo = 0;        ///< trace_id bytes [0, 8), LE
  std::uint64_t trace_hi = 0;        ///< trace_id bytes [8, 16), LE
  std::uint64_t parent_span_id = 0;  ///< trailer bytes [16, 24), LE

  [[nodiscard]] bool valid() const noexcept {
    return (trace_lo | trace_hi) != 0;
  }
};

enum class Opcode : std::uint16_t {
  kPing = 1,      ///< liveness probe; empty payload
  kLoadRun = 2,   ///< pre-warm the metadata cache with one run's sidecars
  kCompare = 3,   ///< two-stage compare of one checkpoint pair
  kTimeline = 4,  ///< first-divergence sweep over two runs' histories
  kStats = 5,     ///< cache + request counters
  kShutdown = 6,  ///< begin graceful drain
  // RSVC v2 verb set: live divergence monitoring (docs/SERVICE.md).
  kWatchOpen = 7,   ///< open a watch session against a reference run
  kWatchPush = 8,   ///< push one iteration's digests (binary RMFD entries)
  kWatchClose = 9,  ///< close the watch session; summary reply
  kMetrics = 10,    ///< Prometheus 0.0.4 text exposition of the registry
  // RSVC v2: streamed partial results (docs/FORMATS.md "Chunked responses").
  kTimelineChunk = 11,  ///< one bounded slice of a streamed TIMELINE reply;
                        ///< carried with kFlagResponse set, terminated by
                        ///< kFlagFinalChunk
};

enum class WireStatus : std::uint16_t {
  kOk = 0,
  kBadRequest = 1,       ///< malformed payload / unknown opcode
  kNotFound = 2,         ///< named run / checkpoint does not exist
  kTooManyRequests = 3,  ///< per-client in-flight cap hit (backpressure)
  kDeadlineExceeded = 4, ///< request timed out server-side
  kShuttingDown = 5,     ///< daemon is draining; retry against a new one
  kInternal = 6,         ///< handler failed; payload carries the status
};

[[nodiscard]] const char* opcode_name(Opcode op) noexcept;
[[nodiscard]] const char* wire_status_name(WireStatus status) noexcept;

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  std::uint16_t code = 0;
  std::uint32_t flags = 0;
  std::uint32_t payload_bytes = 0;
  std::uint64_t request_id = 0;

  [[nodiscard]] bool is_response() const noexcept {
    return (flags & kFlagResponse) != 0;
  }
  [[nodiscard]] bool has_trace_context() const noexcept {
    return (flags & kFlagTraceContext) != 0;
  }
};

/// Appends one complete frame (header + payload, plus the trace-context
/// trailer when `trace` is non-null and valid — the flag bit is set
/// automatically). A null or invalid `trace` emits exactly the pre-trailer
/// byte stream.
void append_frame(std::vector<std::uint8_t>& out, const FrameHeader& header,
                  std::string_view payload,
                  const WireTraceContext* trace = nullptr);

/// Request frame: code = opcode, JSON payload flag set when non-empty and
/// `json` (WATCH_PUSH requests carry a binary digest payload instead).
/// `trace`, when non-null and valid, appends the trace-context trailer.
void append_request(std::vector<std::uint8_t>& out, Opcode op,
                    std::uint64_t request_id, std::string_view payload,
                    bool json = true,
                    const WireTraceContext* trace = nullptr);

/// Response frame: code = status, response flag set. `json` controls the
/// payload-format flag: METRICS replies carry Prometheus text, not JSON.
void append_response(std::vector<std::uint8_t>& out, WireStatus status,
                     std::uint64_t request_id, std::string_view payload,
                     bool json = true);

/// One continuation frame of a streamed (chunked) response: code =
/// kTimelineChunk with the response flag set, `slice` holding the next run
/// of payload bytes. `final` sets kFlagFinalChunk on the terminating frame.
/// The JSON flag is set on every chunk — it describes the reassembled
/// payload, not the individual slice.
void append_chunk(std::vector<std::uint8_t>& out, std::uint64_t request_id,
                  std::string_view slice, bool final);

struct DecodedFrame {
  FrameHeader header;
  std::string payload;
  /// Trailer contents; valid() only when the frame carried one.
  WireTraceContext trace;
  /// Total bytes consumed from the buffer (header + payload + trailer).
  std::size_t frame_bytes = 0;
};

enum class DecodeOutcome {
  kNeedMoreData,  ///< prefix is consistent, frame incomplete
  kFrame,         ///< one complete frame decoded into *frame
  kBadMagic,      ///< stream is not speaking this protocol
  kBadVersion,    ///< protocol version mismatch
  kOversized,     ///< declared size exceeds max_frame_bytes; decoded header
                  ///< fields are valid in *frame for error replies
                  ///< (request_id when its 8 bytes have arrived, else 0)
  kBadTraceContext,  ///< trailer flag set but the trace id is all-zero —
                     ///< a malformed trailer, treated like bad framing
};

/// Attempts to decode one frame from the front of `buffer`. Garbage is
/// detected as early as the prefix allows: magic after 4 bytes, version
/// after 6, oversize after 16 (trailer bytes included in the size check,
/// since the flags live in the same prefix) — before any payload
/// accumulates.
[[nodiscard]] DecodeOutcome decode_frame(std::span<const std::uint8_t> buffer,
                                         std::uint32_t max_frame_bytes,
                                         DecodedFrame* frame);

}  // namespace repro::svc
