#include "svc/hash_ring.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <span>

#include "hash/murmur3.hpp"
#include "telemetry/json_parse.hpp"

namespace repro::svc {

namespace {

std::span<const std::uint8_t> bytes_of(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

RunIdRing::RunIdRing(std::vector<RingWorker> workers) {
  for (auto& worker : workers) add(std::move(worker));
}

void RunIdRing::add(RingWorker worker) {
  for (auto& existing : workers_) {
    if (existing.endpoint == worker.endpoint) {
      existing.weight = worker.weight;
      return;
    }
  }
  workers_.push_back(std::move(worker));
}

bool RunIdRing::remove(std::string_view endpoint) {
  const auto it = std::find_if(
      workers_.begin(), workers_.end(),
      [&](const RingWorker& w) { return w.endpoint == endpoint; });
  if (it == workers_.end()) return false;
  workers_.erase(it);
  return true;
}

double RunIdRing::score(std::string_view key, const RingWorker& worker) {
  // Seed the key hash with the worker's identity so each worker draws an
  // independent uniform variate for the same key. The weighted-rendezvous
  // transform weight / -ln(u) makes the argmax land on worker i with
  // probability weight_i / total_weight, exactly (Thaler–Ravishankar HRW
  // with the standard weighting fix).
  const std::uint64_t seed =
      hash::murmur3f(bytes_of(worker.endpoint)).fold();
  const hash::Digest128 h = hash::murmur3f(bytes_of(key), seed);
  // Top 53 bits → u strictly inside (0, 1): the +0.5 offset keeps u off
  // both endpoints, so -ln(u) is finite and positive.
  const double u =
      (static_cast<double>(h.lo >> 11) + 0.5) * 0x1.0p-53;
  const double w = worker.weight > 0 ? worker.weight : 0.0;
  return -w / std::log(u);
}

const RingWorker* RunIdRing::owner(std::string_view key) const {
  const RingWorker* best = nullptr;
  double best_score = -1.0;
  for (const auto& worker : workers_) {
    const double s = score(key, worker);
    if (best == nullptr || s > best_score ||
        (s == best_score && worker.endpoint < best->endpoint)) {
      best = &worker;
      best_score = s;
    }
  }
  return best;
}

std::vector<const RingWorker*> RunIdRing::ranked(std::string_view key) const {
  std::vector<const RingWorker*> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) out.push_back(&worker);
  std::stable_sort(out.begin(), out.end(),
                   [&](const RingWorker* a, const RingWorker* b) {
                     const double sa = score(key, *a);
                     const double sb = score(key, *b);
                     if (sa != sb) return sa > sb;
                     return a->endpoint < b->endpoint;
                   });
  return out;
}

std::string routing_key(std::string_view json_payload) {
  if (json_payload.empty()) return "";
  const auto parsed = telemetry::json_parse(json_payload);
  if (!parsed.has_value() || !parsed->is_object()) return "";
  const std::string run_a = parsed->string_or("run_a", "");
  const std::string run_b = parsed->string_or("run_b", "");
  if (!run_a.empty() || !run_b.empty()) return run_a + "|" + run_b;
  const std::string file_a = parsed->string_or("file_a", "");
  const std::string file_b = parsed->string_or("file_b", "");
  if (!file_a.empty() || !file_b.empty()) return file_a + "|" + file_b;
  const std::string run = parsed->string_or("run", "");
  if (!run.empty()) return run;
  return parsed->string_or("reference", "");
}

}  // namespace repro::svc
