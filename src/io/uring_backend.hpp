// io_uring backend implemented against the raw kernel ABI (Section 2.5.2).
//
// No liburing dependency: we issue io_uring_setup/io_uring_enter syscalls
// ourselves and mmap the submission/completion rings. The paper leans on
// io_uring precisely because stage 2's candidate chunks are many small reads
// at scattered offsets — the ring lets us enqueue a whole batch with one
// syscall instead of one context switch per read.
#pragma once

#include <filesystem>
#include <memory>

#include "common/status.hpp"
#include "io/backend.hpp"

namespace repro::io {

/// Open `path` with an io_uring-backed IoBackend. Returns kUnsupported when
/// io_uring_setup fails (old kernel / seccomp).
repro::Result<std::unique_ptr<IoBackend>> open_uring_backend(
    const std::filesystem::path& path, const BackendOptions& options);

}  // namespace repro::io
