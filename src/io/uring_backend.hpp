// io_uring backend implemented against the raw kernel ABI (Section 2.5.2).
//
// No liburing dependency: we issue io_uring_setup/io_uring_enter syscalls
// ourselves and mmap the submission/completion rings. The paper leans on
// io_uring precisely because stage 2's candidate chunks are many small reads
// at scattered offsets — the ring lets us enqueue a whole batch with one
// syscall instead of one context switch per read.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>

#include "common/status.hpp"
#include "io/backend.hpp"

namespace repro::io {

/// io_uring SQE lengths are 32-bit; a single read is capped here and longer
/// requests are split across the short-read continuation path. (1 GiB also
/// matches the kernel's own per-read clamp, MAX_RW_COUNT.)
inline constexpr std::uint64_t kMaxUringReadBytes = 1ULL << 30;

/// Length of the next SQE for a request with `remaining` bytes to go.
[[nodiscard]] constexpr std::uint32_t clamp_uring_read_len(
    std::uint64_t remaining) noexcept {
  return static_cast<std::uint32_t>(
      remaining < kMaxUringReadBytes ? remaining : kMaxUringReadBytes);
}

/// Open `path` with an io_uring-backed IoBackend. Returns kUnsupported when
/// io_uring_setup fails (old kernel / seccomp). A mid-batch submit failure
/// later does not error the caller: the backend degrades to the thread-async
/// backend over the same file (stats().fallbacks counts the switch).
repro::Result<std::unique_ptr<IoBackend>> open_uring_backend(
    const std::filesystem::path& path, const BackendOptions& options);

/// Test-only: make open_uring_backend report kUnsupported, as if
/// io_uring_setup had failed, to exercise open-time fallback paths.
void set_uring_setup_failure_for_testing(bool enabled) noexcept;

/// Test-only: make the next `count` batch submissions fail with a hard
/// error, to exercise the mid-batch uring -> threads degradation.
void set_uring_submit_failures_for_testing(unsigned count) noexcept;

}  // namespace repro::io
