// Read-only memory-mapped file region.
//
// The flat sidecar format (src/merkle/flat.hpp) is laid out for mapping,
// not parsing: a mapped sidecar is used in place, its pages are backed by
// the OS page cache, and a second process mapping the same file shares the
// physical pages read-only — the property ROADMAP item 1's multi-worker
// daemon tier needs for one warm metadata set per box, not per worker.
//
// MmapRegion is the RAII wrapper: open + mmap(PROT_READ) + madvise(WILLNEED)
// on success, munmap on destruction. Callers that can also work from heap
// bytes (merkle::MappedBundle) treat a failed map as a soft error and fall
// back to a plain read — mapping is an optimization, never a requirement.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>

#include "common/status.hpp"

namespace repro::io {

class MmapRegion {
 public:
  MmapRegion() = default;
  ~MmapRegion();

  MmapRegion(MmapRegion&& other) noexcept;
  MmapRegion& operator=(MmapRegion&& other) noexcept;
  MmapRegion(const MmapRegion&) = delete;
  MmapRegion& operator=(const MmapRegion&) = delete;

  /// Map `path` read-only. The file descriptor is closed before returning
  /// (the mapping keeps the inode alive). Advises WILLNEED so the kernel
  /// starts readahead for the soon-to-be-walked metadata. An empty file
  /// yields a valid region with data() == nullptr and size() == 0.
  static repro::Result<MmapRegion> open(const std::filesystem::path& path);

  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, size_};
  }
  /// True when an actual mapping is held (false for default-constructed or
  /// moved-from regions and for empty files).
  [[nodiscard]] bool mapped() const noexcept { return data_ != nullptr; }

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;

  void reset() noexcept;
};

/// Test-only: make the next `count` MmapRegion::open calls fail as if mmap
/// itself had failed (exercises the heap-read fallback without needing a
/// kernel that refuses mappings). A non-empty `path_substring` restricts the
/// injected failures to paths containing it.
void set_fail_next_mmaps_for_testing(unsigned count,
                                     std::string path_substring = "");

}  // namespace repro::io
