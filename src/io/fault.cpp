#include "io/fault.hpp"

#include <algorithm>
#include <utility>

namespace repro::io {

namespace {

/// splitmix64 finaliser: cheap, well-mixed, and stable across platforms —
/// the fault schedule must not depend on std::hash implementation details.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t fault_key(std::uint64_t seed, std::uint64_t offset,
                                      std::uint64_t len) noexcept {
  return mix64(mix64(seed ^ offset) ^ len);
}

/// Maps the key to [0, 1) for comparison against the plan's probabilities.
[[nodiscard]] double unit_interval(std::uint64_t key) noexcept {
  return static_cast<double>(key >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjectingBackend::FaultInjectingBackend(std::unique_ptr<IoBackend> inner,
                                             FaultPlan plan)
    : inner_(std::move(inner)),
      plan_(plan),
      name_("fault+" + std::string{inner_->name()}) {}

FaultInjectingBackend::FaultKind FaultInjectingBackend::classify(
    std::uint64_t key) const noexcept {
  // Stacked thresholds: one uniform draw per request, so the fault kinds are
  // mutually exclusive and each appears with its configured probability.
  const double draw = unit_interval(mix64(key));
  double threshold = plan_.short_read_prob;
  if (draw < threshold) return FaultKind::kShortRead;
  threshold += plan_.interrupt_prob;
  if (draw < threshold) return FaultKind::kInterrupt;
  threshold += plan_.transient_eio_prob;
  if (draw < threshold) return FaultKind::kTransientEio;
  threshold += plan_.hard_error_prob;
  if (draw < threshold) return FaultKind::kHardError;
  threshold += plan_.bitflip_prob;
  if (draw < threshold) return FaultKind::kBitflip;
  return FaultKind::kNone;
}

repro::Status FaultInjectingBackend::read_one(const ReadRequest& request) {
  const std::uint64_t key =
      fault_key(plan_.seed, request.offset, request.dest.size());
  const FaultKind kind = classify(key);

  unsigned attempt = 0;
  if (kind != FaultKind::kNone) {
    std::lock_guard<std::mutex> lock(mu_);
    attempt = attempts_[key]++;
  }

  switch (kind) {
    case FaultKind::kNone:
      break;
    case FaultKind::kShortRead: {
      if (attempt > 0) break;  // retry goes through
      // Deliver a prefix and poison the tail: a caller that ignores the
      // error status and consumes the buffer anyway will diverge loudly.
      const std::size_t prefix = request.dest.size() / 2;
      REPRO_RETURN_IF_ERROR(
          inner_->read_at(request.offset, request.dest.subspan(0, prefix)));
      std::fill(request.dest.begin() + static_cast<std::ptrdiff_t>(prefix),
                request.dest.end(), std::uint8_t{0xEE});
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counts_.short_reads;
      }
      return repro::unavailable(
          "injected short read at offset " + std::to_string(request.offset) +
          " (" + std::to_string(prefix) + "/" +
          std::to_string(request.dest.size()) + " bytes)");
    }
    case FaultKind::kInterrupt: {
      if (attempt >= plan_.storm_length) break;  // storm over
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counts_.interrupts;
      }
      return repro::unavailable(
          "injected interrupt at offset " + std::to_string(request.offset) +
          " (storm " + std::to_string(attempt + 1) + "/" +
          std::to_string(plan_.storm_length) + ")");
    }
    case FaultKind::kTransientEio: {
      if (attempt > 0) break;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counts_.transient_eios;
      }
      return repro::unavailable("injected transient EIO at offset " +
                                std::to_string(request.offset));
    }
    case FaultKind::kHardError: {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counts_.hard_errors;
      }
      return repro::io_error("injected hard EIO at offset " +
                             std::to_string(request.offset));
    }
    case FaultKind::kBitflip: {
      REPRO_RETURN_IF_ERROR(inner_->read_at(request.offset, request.dest));
      if (!request.dest.empty() && attempt == 0) {
        const std::size_t byte = mix64(key ^ 0xb17f11bULL) % request.dest.size();
        const unsigned bit = static_cast<unsigned>(mix64(key ^ 0xb17ULL) % 8);
        request.dest[byte] ^= static_cast<std::uint8_t>(1U << bit);
        std::lock_guard<std::mutex> lock(mu_);
        ++counts_.bitflips;
      }
      return repro::Status::ok();
    }
  }

  return inner_->read_at(request.offset, request.dest);
}

repro::Status FaultInjectingBackend::read_at(std::uint64_t offset,
                                             std::span<std::uint8_t> dest) {
  return read_one(ReadRequest{offset, dest});
}

repro::Status FaultInjectingBackend::read_batch(
    std::span<ReadRequest> requests) {
  for (const auto& request : requests) {
    REPRO_RETURN_IF_ERROR(read_one(request));
  }
  return repro::Status::ok();
}

FaultInjectingBackend::InjectionCounts FaultInjectingBackend::injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

}  // namespace repro::io
