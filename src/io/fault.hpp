// Deterministic fault injection for the I/O layer.
//
// FaultInjectingBackend decorates any IoBackend and injects the failure
// modes a PFS-backed comparison meets in the wild — short reads, EINTR /
// EAGAIN storms, one-shot transient EIO, hard EIO, silent bit flips — so
// every backend's recovery path, the streamer's bounded retry loop above
// it, and the "clean error on permanent faults" contract are all testable
// without a faulty disk.
//
// Injection is seeded and keyed on (offset, length), not call order, so a
// given request sees the same fault schedule no matter how the backend
// reorders a batch, and a retried request deterministically progresses
// through its storm and then succeeds. Transient faults surface as
// StatusCode::kUnavailable (the code retry loops branch on); hard faults as
// kIoError; bit flips return OK with corrupted bytes — the one failure mode
// only the comparison itself can catch.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.hpp"
#include "io/backend.hpp"

namespace repro::io {

struct FaultPlan {
  std::uint64_t seed = 1;
  /// Probability a request's first attempt delivers only a prefix (the rest
  /// of the buffer poisoned) and fails with a retryable kUnavailable.
  double short_read_prob = 0;
  /// Probability of an EINTR/EAGAIN storm: `storm_length` consecutive
  /// retryable failures before the request goes through.
  double interrupt_prob = 0;
  unsigned storm_length = 3;
  /// Probability of one transient EIO before success.
  double transient_eio_prob = 0;
  /// Probability of a hard, non-retryable EIO (every attempt fails).
  double hard_error_prob = 0;
  /// Probability of a silent single-bit flip in the delivered bytes.
  double bitflip_prob = 0;
};

class FaultInjectingBackend final : public IoBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<IoBackend> inner, FaultPlan plan);

  struct InjectionCounts {
    std::uint64_t short_reads = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t transient_eios = 0;
    std::uint64_t hard_errors = 0;
    std::uint64_t bitflips = 0;

    [[nodiscard]] std::uint64_t total() const noexcept {
      return short_reads + interrupts + transient_eios + hard_errors +
             bitflips;
    }
  };

  [[nodiscard]] std::uint64_t size() const noexcept override {
    return inner_->size();
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }
  [[nodiscard]] IoStats stats() const noexcept override {
    return inner_->stats();
  }

  repro::Status read_at(std::uint64_t offset,
                        std::span<std::uint8_t> dest) override;
  /// Requests run in order; the first injected failure aborts the batch
  /// (matching the real backends' abort-on-error semantics), so a caller's
  /// whole-batch retry re-runs every request and each request's fault
  /// schedule advances deterministically.
  repro::Status read_batch(std::span<ReadRequest> requests) override;

  /// Faults delivered so far, by kind.
  [[nodiscard]] InjectionCounts injected() const;

  [[nodiscard]] IoBackend& inner() noexcept { return *inner_; }

 private:
  enum class FaultKind : std::uint8_t {
    kNone,
    kShortRead,
    kInterrupt,
    kTransientEio,
    kHardError,
    kBitflip,
  };

  [[nodiscard]] FaultKind classify(std::uint64_t key) const noexcept;
  repro::Status read_one(const ReadRequest& request);

  std::unique_ptr<IoBackend> inner_;
  FaultPlan plan_;
  std::string name_;
  mutable std::mutex mu_;  ///< guards attempts_ and counts_
  std::unordered_map<std::uint64_t, unsigned> attempts_;
  InjectionCounts counts_;
};

}  // namespace repro::io
