#include "io/stream.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace repro::io {
namespace {

struct StreamMetrics {
  telemetry::Counter& slices;
  telemetry::Counter& bytes;
  telemetry::Counter& batch_retries;
  /// Bytes buffered in filled slices the consumer has not drained yet;
  /// mirrored into traces by telemetry::ResourceSampler.
  telemetry::Gauge& bytes_inflight;

  static StreamMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static StreamMetrics* metrics = new StreamMetrics{
        registry.counter("io.stream.slices"),
        registry.counter("io.stream.bytes"),
        registry.counter("io.batch_retry.count"),
        registry.gauge("io.stream.bytes_inflight"),
    };
    return *metrics;
  }
};

/// Recomputes the in-flight gauge; callers hold the streamer's mutex and
/// the filled queue is at most `depth` entries, so the walk is trivial.
template <typename FilledQueue>
void update_bytes_inflight(const FilledQueue& filled) {
  double total = 0;
  for (const auto& slice : filled) {
    total += static_cast<double>(slice->data_a.size() + slice->data_b.size());
  }
  StreamMetrics::get().bytes_inflight.set(total);
}

}  // namespace

PairedChunkStreamer::PairedChunkStreamer(IoBackend& run_a, IoBackend& run_b,
                                         std::uint64_t chunk_bytes,
                                         std::uint64_t data_bytes,
                                         std::vector<std::uint64_t> chunks,
                                         StreamOptions options)
    : run_a_(run_a),
      run_b_(run_b),
      chunk_bytes_(chunk_bytes),
      data_bytes_(data_bytes),
      chunks_(std::move(chunks)),
      options_(options) {
  // Pre-allocate the slice pool (Figure 3: "pre-allocate buffers").
  const unsigned depth = std::max(2U, options_.depth);
  for (unsigned i = 0; i < depth; ++i) {
    free_slots_.push_back(std::make_unique<ChunkSlice>());
  }
  producer_ = std::thread([this] {
    telemetry::Tracer::global().set_thread_name("io-producer");
    producer_loop();
  });
}

PairedChunkStreamer::~PairedChunkStreamer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  slot_freed_.notify_all();
  producer_.join();
}

repro::Status PairedChunkStreamer::read_batch_with_retry(
    IoBackend& backend, std::span<ReadRequest> requests) {
  // The whole batch is re-issued: backends abort a batch on the first
  // failure, and re-reading already-delivered requests is idempotent.
  unsigned attempts = 1;
  while (true) {
    repro::Status status = backend.read_batch(requests);
    if (status.is_ok() ||
        status.code() != repro::StatusCode::kUnavailable ||
        attempts >= options_.retry.max_attempts) {
      if (!status.is_ok() &&
          status.code() == repro::StatusCode::kUnavailable) {
        return repro::io_error("batch retries exhausted after " +
                               std::to_string(attempts) + " attempts: " +
                               std::string{status.message()});
      }
      return status;
    }
    batch_retries_.fetch_add(1, std::memory_order_relaxed);
    StreamMetrics::get().batch_retries.increment();
    backoff_sleep(options_.retry, attempts);
    ++attempts;
  }
}

std::unique_ptr<ChunkSlice> PairedChunkStreamer::acquire_free_slot() {
  std::unique_lock<std::mutex> lock(mu_);
  slot_freed_.wait(lock,
                   [this] { return stopping_ || !free_slots_.empty(); });
  if (stopping_) return nullptr;
  auto slot = std::move(free_slots_.front());
  free_slots_.pop_front();
  return slot;
}

void PairedChunkStreamer::producer_loop() {
  const std::uint64_t slice_target =
      std::max(options_.slice_bytes, chunk_bytes_);

  std::size_t pos = 0;
  repro::Status status;
  while (pos < chunks_.size() && status.is_ok()) {
    // Take chunks until the payload reaches the slice target.
    std::size_t end = pos;
    std::uint64_t payload = 0;
    while (end < chunks_.size() && payload < slice_target) {
      const std::uint64_t begin_byte = chunks_[end] * chunk_bytes_;
      payload += std::min(chunk_bytes_, data_bytes_ - begin_byte);
      ++end;
    }

    auto slot = acquire_free_slot();
    if (slot == nullptr) return;  // stopping

    telemetry::TraceSpan slice_span("stream.slice");
    const ReadPlan plan = plan_chunk_reads(
        std::span<const std::uint64_t>(chunks_.data() + pos, end - pos),
        chunk_bytes_, data_bytes_, options_.plan);

    slot->placements = plan.placements;
    slot->payload_bytes = plan.payload_bytes;
    slot->waste_bytes = plan.waste_bytes;
    slot->data_a.resize(plan.buffer_bytes);
    slot->data_b.resize(plan.buffer_bytes);

    // Issue both runs' scattered reads; the backend overlaps the requests.
    std::vector<ReadRequest> requests;
    requests.reserve(plan.extents.size());
    auto build_requests = [&](std::vector<std::uint8_t>& buffer,
                              std::uint64_t base_offset) {
      requests.clear();
      for (const auto& extent : plan.extents) {
        requests.push_back(
            {base_offset + extent.file_offset,
             std::span<std::uint8_t>(buffer.data() + extent.buffer_offset,
                                     extent.length)});
      }
    };
    build_requests(slot->data_a, options_.base_offset_a);
    status = read_batch_with_retry(run_a_, requests);
    if (status.is_ok()) {
      build_requests(slot->data_b, options_.base_offset_b);
      status = read_batch_with_retry(run_b_, requests);
    }
    bytes_read_.fetch_add(plan.buffer_bytes, std::memory_order_relaxed);
    StreamMetrics& metrics = StreamMetrics::get();
    metrics.slices.increment();
    // Both runs read the planned extents, so the slice moved 2x buffer_bytes.
    metrics.bytes.add(2 * plan.buffer_bytes);
    slice_span.arg("chunks", static_cast<std::uint64_t>(end - pos))
        .arg("payload_bytes", plan.payload_bytes)
        .arg("waste_bytes", plan.waste_bytes);
    slice_span.end();

    {
      std::lock_guard<std::mutex> lock(mu_);
      if (status.is_ok()) {
        filled_.push_back(std::move(slot));
      } else {
        status_ = status;
        free_slots_.push_back(std::move(slot));
      }
      update_bytes_inflight(filled_);
    }
    slice_ready_.notify_one();
    pos = end;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    producer_done_ = true;
  }
  slice_ready_.notify_all();
}

ChunkSlice* PairedChunkStreamer::next() {
  std::unique_lock<std::mutex> lock(mu_);
  // Recycle the slice the consumer just finished with.
  if (consumer_slice_ != nullptr) {
    free_slots_.push_back(std::move(consumer_slice_));
    slot_freed_.notify_one();
  }
  slice_ready_.wait(lock,
                    [this] { return producer_done_ || !filled_.empty(); });
  if (filled_.empty()) return nullptr;
  consumer_slice_ = std::move(filled_.front());
  filled_.pop_front();
  update_bytes_inflight(filled_);
  return consumer_slice_.get();
}

repro::Status PairedChunkStreamer::status() {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace repro::io
