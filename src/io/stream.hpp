// Asynchronous paired-chunk streaming (Section 2.3 stage 2, Figure 3).
//
// The verification stage must read the same candidate chunks from *both*
// runs' checkpoint files and compare them element-wise. To overlap I/O with
// compute, a producer thread keeps filling pre-allocated slice buffers
// (scattered reads planned by read_planner, issued through any IoBackend)
// while the consumer compares the previous slice — the paper's multi-level
// pipeline, with "transfer to GPU memory" collapsing into "buffer handoff"
// on a host-only build.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "io/backend.hpp"
#include "io/read_planner.hpp"

namespace repro::io {

struct StreamOptions {
  /// Target payload bytes per slice (clamped to >= one chunk).
  std::uint64_t slice_bytes = 8ULL << 20;
  /// Slices in flight (>= 2 to get any overlap).
  unsigned depth = 2;
  PlanOptions plan;
  /// File offset where the chunked data region starts in each file (chunk 0
  /// lives at this offset). Checkpoint headers differ in size across runs
  /// only in degenerate cases, but the streamer does not assume alignment.
  std::uint64_t base_offset_a = 0;
  std::uint64_t base_offset_b = 0;
  /// Whole-batch retry budget for kUnavailable failures surfaced by the
  /// backend (syscall-level transients are already retried below it).
  RetryPolicy retry;
};

/// One filled slice: both runs' bytes for a set of candidate chunks.
/// `placements[i]` locates chunk payloads inside data_a / data_b (identical
/// layout for both).
struct ChunkSlice {
  std::vector<ChunkPlacement> placements;
  std::vector<std::uint8_t> data_a;
  std::vector<std::uint8_t> data_b;
  std::uint64_t payload_bytes = 0;
  std::uint64_t waste_bytes = 0;
};

class PairedChunkStreamer {
 public:
  /// `chunks` must be sorted unique chunk indices of a checkpoint of
  /// `data_bytes` bytes chunked every `chunk_bytes`. Both backends must be
  /// open over files of `data_bytes` bytes.
  PairedChunkStreamer(IoBackend& run_a, IoBackend& run_b,
                      std::uint64_t chunk_bytes, std::uint64_t data_bytes,
                      std::vector<std::uint64_t> chunks,
                      StreamOptions options = {});
  ~PairedChunkStreamer();

  PairedChunkStreamer(const PairedChunkStreamer&) = delete;
  PairedChunkStreamer& operator=(const PairedChunkStreamer&) = delete;

  /// Next filled slice, blocking while the producer reads. Returns nullptr
  /// once every chunk has been delivered (or on error — check status()).
  /// The returned slice stays valid until the following next() call, which
  /// recycles its buffers.
  ChunkSlice* next();

  /// OK while streaming; the first I/O error once next() returned nullptr.
  [[nodiscard]] repro::Status status();

  /// Total bytes read from each file so far (payload + coalescing waste).
  [[nodiscard]] std::uint64_t bytes_read_per_file() const noexcept {
    return bytes_read_;
  }

  /// Whole-batch retries the producer issued after kUnavailable failures.
  [[nodiscard]] std::uint64_t batch_retries() const noexcept {
    return batch_retries_.load(std::memory_order_relaxed);
  }

 private:
  void producer_loop();
  repro::Status read_batch_with_retry(IoBackend& backend,
                                      std::span<ReadRequest> requests);
  std::unique_ptr<ChunkSlice> acquire_free_slot();

  IoBackend& run_a_;
  IoBackend& run_b_;
  const std::uint64_t chunk_bytes_;
  const std::uint64_t data_bytes_;
  const std::vector<std::uint64_t> chunks_;
  const StreamOptions options_;

  std::mutex mu_;
  std::condition_variable slot_freed_;
  std::condition_variable slice_ready_;
  std::deque<std::unique_ptr<ChunkSlice>> free_slots_;
  std::deque<std::unique_ptr<ChunkSlice>> filled_;
  bool producer_done_ = false;
  bool stopping_ = false;
  repro::Status status_;
  std::unique_ptr<ChunkSlice> consumer_slice_;  // slice lent to the consumer
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> batch_retries_{0};

  std::thread producer_;
};

}  // namespace repro::io
