#include "io/retry.hpp"

#include <cerrno>

#include <chrono>
#include <thread>

namespace repro::io {

bool errno_is_interrupt(int errno_value) noexcept {
  return errno_value == EINTR || errno_value == EAGAIN ||
         errno_value == EWOULDBLOCK;
}

bool errno_is_transient_io(int errno_value) noexcept {
  return errno_value == EIO || errno_value == ENOMEM ||
         errno_value == ENOBUFS;
}

void backoff_sleep(const RetryPolicy& policy, unsigned attempt) noexcept {
  if (policy.backoff_initial_us == 0 || attempt == 0) return;
  const unsigned shift = attempt - 1 < 16U ? attempt - 1 : 16U;
  std::uint64_t delay = static_cast<std::uint64_t>(policy.backoff_initial_us)
                        << shift;
  if (delay > policy.backoff_max_us) delay = policy.backoff_max_us;
  std::this_thread::sleep_for(std::chrono::microseconds(delay));
}

}  // namespace repro::io
