// I/O backend abstraction for reading checkpoint data from the "PFS".
//
// Stage 2 of the comparison issues many small reads at scattered offsets
// (the chunks the Merkle stage could not prune). The paper evaluates mmap
// against io_uring for this pattern (Figure 9); we ship four backends behind
// one interface so benches can swap them:
//   kPread       — synchronous positional reads (simple baseline)
//   kMmap        — map the file, copy ranges (page-fault driven)
//   kUring       — Linux io_uring via raw syscalls (the paper's choice)
//   kThreadAsync — portable async: a team of I/O threads issuing preads
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "io/retry.hpp"

namespace repro::io {

enum class BackendKind : std::uint8_t {
  kPread = 0,
  kMmap = 1,
  kUring = 2,
  kThreadAsync = 3,
};

std::string_view backend_name(BackendKind kind) noexcept;

/// Parse "pread" / "mmap" / "uring" / "threads".
repro::Result<BackendKind> parse_backend(std::string_view name);

/// One scattered read: fill `dest` from file offset `offset`.
struct ReadRequest {
  std::uint64_t offset = 0;
  std::span<std::uint8_t> dest;
};

class IoBackend {
 public:
  virtual ~IoBackend() = default;

  /// Total file size in bytes.
  [[nodiscard]] virtual std::uint64_t size() const noexcept = 0;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Blocking single read; must fill dest completely (EOF is an error).
  virtual repro::Status read_at(std::uint64_t offset,
                                std::span<std::uint8_t> dest) = 0;

  /// Blocking scattered read of the whole batch. Backends overlap the
  /// requests internally (queue depth / thread team); returns once every
  /// request has completed.
  virtual repro::Status read_batch(std::span<ReadRequest> requests) = 0;

  /// Recovery counters accumulated over this backend's lifetime: retries,
  /// continued short reads, absorbed interrupts, fallback switches. All
  /// zero in a healthy run.
  [[nodiscard]] virtual IoStats stats() const noexcept { return {}; }
};

struct BackendOptions {
  /// io_uring submission-queue depth / thread-team size.
  unsigned queue_depth = 64;
  /// Threads in the kThreadAsync team.
  unsigned io_threads = 4;
  /// Bounds every backend's transient-fault recovery (docs/ROBUSTNESS.md).
  RetryPolicy retry;
};

/// Open `path` read-only with the requested backend. kUring falls back with
/// kUnsupported if the kernel (or sandbox) refuses io_uring_setup; callers
/// that do not care use open_best().
repro::Result<std::unique_ptr<IoBackend>> open_backend(
    const std::filesystem::path& path, BackendKind kind,
    const BackendOptions& options = {});

/// io_uring if available, otherwise the thread-async backend.
repro::Result<std::unique_ptr<IoBackend>> open_best(
    const std::filesystem::path& path, const BackendOptions& options = {});

/// True if io_uring_setup works in this process (probed once, cached).
bool uring_available() noexcept;

}  // namespace repro::io
