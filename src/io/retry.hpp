// Shared retry vocabulary for the I/O layer.
//
// Stage 2's scattered reads meet transient faults in the wild: EINTR/EAGAIN
// storms under signal-heavy MPI runtimes, the occasional EIO from a flaky
// PFS path, short reads near stripe boundaries. The "no false negatives"
// contract of the comparison means every such fault must either be recovered
// or surfaced as a clean error — never silently dropped or retried forever.
// RetryPolicy bounds the recovery (attempt caps, capped exponential backoff)
// and IoStats counts every recovery action so the compare report can show
// how hard the I/O layer had to work (see docs/ROBUSTNESS.md).
#pragma once

#include <atomic>
#include <cstdint>

namespace repro::io {

struct RetryPolicy {
  /// Total attempts per transient-fault site, first try included.
  unsigned max_attempts = 4;
  /// Backoff before retry r (1-based) is min(initial << (r-1), max) µs.
  unsigned backoff_initial_us = 100;
  unsigned backoff_max_us = 20000;
  /// Consecutive EINTR/EAGAIN results tolerated before giving up. These do
  /// not consume max_attempts: an interrupted syscall made no progress and
  /// carries no evidence of a failing device.
  unsigned max_interrupts = 256;
  /// Retry transient EIO-class failures (off = fail fast on the first EIO).
  bool retry_transient_io = true;

  /// Fail-fast policy: a single attempt, no tolerance for interrupts.
  [[nodiscard]] static RetryPolicy none() noexcept {
    RetryPolicy policy;
    policy.max_attempts = 1;
    policy.max_interrupts = 0;
    policy.retry_transient_io = false;
    return policy;
  }
};

/// Recovery counters published by every IoBackend (IoBackend::stats()) and
/// aggregated into CompareReport. All zero in a healthy run.
struct IoStats {
  std::uint64_t retries = 0;      ///< re-issued reads after transient errors
  std::uint64_t short_reads = 0;  ///< partial transfers continued
  std::uint64_t interrupts = 0;   ///< EINTR/EAGAIN results absorbed
  std::uint64_t fallbacks = 0;    ///< io_uring -> threads degradations

  IoStats& operator+=(const IoStats& other) noexcept {
    retries += other.retries;
    short_reads += other.short_reads;
    interrupts += other.interrupts;
    fallbacks += other.fallbacks;
    return *this;
  }

  friend IoStats operator+(IoStats lhs, const IoStats& rhs) noexcept {
    lhs += rhs;
    return lhs;
  }

  [[nodiscard]] std::uint64_t total() const noexcept {
    return retries + short_reads + interrupts + fallbacks;
  }
};

/// Thread-safe counter block backing IoStats. The thread-async backend's
/// I/O team bumps these concurrently; snapshots use relaxed loads (counters
/// are monotonic and read after the batch completes).
struct IoStatsCounters {
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> short_reads{0};
  std::atomic<std::uint64_t> interrupts{0};
  std::atomic<std::uint64_t> fallbacks{0};

  [[nodiscard]] IoStats snapshot() const noexcept {
    IoStats out;
    out.retries = retries.load(std::memory_order_relaxed);
    out.short_reads = short_reads.load(std::memory_order_relaxed);
    out.interrupts = interrupts.load(std::memory_order_relaxed);
    out.fallbacks = fallbacks.load(std::memory_order_relaxed);
    return out;
  }
};

/// "The call was interrupted / would block": retried without consuming
/// backoff attempts (EINTR, EAGAIN/EWOULDBLOCK).
[[nodiscard]] bool errno_is_interrupt(int errno_value) noexcept;

/// Plausibly transient device/medium errors worth a bounded, backed-off
/// retry (EIO, ENOMEM, ENOBUFS).
[[nodiscard]] bool errno_is_transient_io(int errno_value) noexcept;

/// Sleep the capped exponential backoff for retry `attempt` (1-based).
void backoff_sleep(const RetryPolicy& policy, unsigned attempt) noexcept;

}  // namespace repro::io
