#include "io/backend.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "io/uring_backend.hpp"
#include "par/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace repro::io {

std::string_view backend_name(BackendKind kind) noexcept {
  switch (kind) {
    case BackendKind::kPread: return "pread";
    case BackendKind::kMmap: return "mmap";
    case BackendKind::kUring: return "io_uring";
    case BackendKind::kThreadAsync: return "threads";
  }
  return "?";
}

repro::Result<BackendKind> parse_backend(std::string_view name) {
  if (name == "pread") return BackendKind::kPread;
  if (name == "mmap") return BackendKind::kMmap;
  if (name == "uring" || name == "io_uring") return BackendKind::kUring;
  if (name == "threads" || name == "async") return BackendKind::kThreadAsync;
  return repro::invalid_argument("unknown io backend: " + std::string{name});
}

namespace {

/// Registry handles shared by every backend. The ad-hoc IoStatsCounters
/// stay authoritative for per-backend CompareReport numbers; these global
/// metrics aggregate the same events across all backends for --metrics-out.
struct IoMetrics {
  telemetry::Counter& read_ops;
  telemetry::Counter& read_bytes;
  telemetry::Counter& retries;
  telemetry::Counter& short_reads;
  telemetry::Counter& interrupts;
  telemetry::Counter& batches;
  telemetry::Histogram& batch_bytes;
  telemetry::Histogram& batch_seconds;

  static IoMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static IoMetrics* metrics = new IoMetrics{
        registry.counter("io.read.ops"),
        registry.counter("io.read.bytes"),
        registry.counter("io.retry.count"),
        registry.counter("io.short_read.count"),
        registry.counter("io.interrupt.count"),
        registry.counter("io.batch.count"),
        registry.histogram("io.batch.bytes", telemetry::size_buckets_bytes()),
        registry.histogram("io.batch.seconds",
                           telemetry::latency_buckets_seconds()),
    };
    return *metrics;
  }
};

std::uint64_t batch_total_bytes(std::span<const ReadRequest> requests) {
  std::uint64_t total = 0;
  for (const auto& request : requests) total += request.dest.size();
  return total;
}

/// RAII wrapper for one read_batch call: opens an "io.batch" trace span and
/// records batch count/size/latency metrics on scope exit.
class BatchScope {
 public:
  BatchScope(std::string_view backend, std::span<const ReadRequest> requests)
      : bytes_(batch_total_bytes(requests)), span_("io.batch") {
    span_.arg("backend", backend)
        .arg("requests", static_cast<std::uint64_t>(requests.size()))
        .arg("bytes", bytes_);
  }

  ~BatchScope() {
    IoMetrics& metrics = IoMetrics::get();
    metrics.batches.increment();
    metrics.batch_bytes.record(static_cast<double>(bytes_));
    metrics.batch_seconds.record(watch_.seconds());
  }

 private:
  std::uint64_t bytes_;
  Stopwatch watch_;
  telemetry::TraceSpan span_;
};

/// Shared open/size/close plumbing for fd-based backends.
class FdBackendBase : public IoBackend {
 public:
  ~FdBackendBase() override {
    if (fd_ >= 0) ::close(fd_);
  }

  repro::Status open_file(const std::filesystem::path& path,
                          const RetryPolicy& retry) {
    retry_ = retry;
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
      return repro::io_error_errno("open: " + path.string(), errno);
    }
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      return repro::io_error_errno("lseek: " + path.string(), errno);
    }
    size_ = static_cast<std::uint64_t>(end);
    path_ = path.string();
    return repro::Status::ok();
  }

  [[nodiscard]] std::uint64_t size() const noexcept override { return size_; }

  [[nodiscard]] IoStats stats() const noexcept override {
    return counters_.snapshot();
  }

 protected:
  repro::Status check_bounds(const ReadRequest& request) const {
    // Overflow-safe form: `offset + len > size` wraps for huge offsets and
    // would wrongly pass (offset == UINT64_MAX - 1 once did).
    if (request.dest.size() > size_ ||
        request.offset > size_ - request.dest.size()) {
      return repro::out_of_range(
          "read past EOF of " + path_ + " (offset " +
          std::to_string(request.offset) + " len " +
          std::to_string(request.dest.size()) + " size " +
          std::to_string(size_) + ")");
    }
    return repro::Status::ok();
  }

  /// Full pread loop: continues short reads, absorbs bounded EINTR/EAGAIN
  /// storms, and gives transient EIO-class errors a capped, backed-off
  /// number of retries before failing.
  repro::Status pread_full(std::uint64_t offset,
                           std::span<std::uint8_t> dest) const {
    IoMetrics& metrics = IoMetrics::get();
    metrics.read_ops.increment();
    metrics.read_bytes.add(dest.size());
    std::size_t got = 0;
    unsigned interrupts = 0;
    unsigned attempts = 1;
    while (got < dest.size()) {
      const ssize_t n = ::pread(fd_, dest.data() + got, dest.size() - got,
                                static_cast<off_t>(offset + got));
      if (n < 0) {
        if (errno_is_interrupt(errno)) {
          counters_.interrupts.fetch_add(1, std::memory_order_relaxed);
          metrics.interrupts.increment();
          if (++interrupts > retry_.max_interrupts) {
            return repro::io_error("pread interrupted " +
                                   std::to_string(interrupts) +
                                   " times without progress: " + path_);
          }
          continue;
        }
        if (retry_.retry_transient_io && errno_is_transient_io(errno) &&
            attempts < retry_.max_attempts) {
          counters_.retries.fetch_add(1, std::memory_order_relaxed);
          metrics.retries.increment();
          backoff_sleep(retry_, attempts);
          ++attempts;
          continue;
        }
        return repro::io_error_errno("pread: " + path_, errno);
      }
      if (n == 0) return repro::io_error("unexpected EOF in " + path_);
      if (static_cast<std::size_t>(n) < dest.size() - got) {
        counters_.short_reads.fetch_add(1, std::memory_order_relaxed);
        metrics.short_reads.increment();
      }
      got += static_cast<std::size_t>(n);
      interrupts = 0;  // progress ends the storm
    }
    return repro::Status::ok();
  }

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
  RetryPolicy retry_;
  mutable IoStatsCounters counters_;
};

class PreadBackend final : public FdBackendBase {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "pread";
  }

  repro::Status read_at(std::uint64_t offset,
                        std::span<std::uint8_t> dest) override {
    REPRO_RETURN_IF_ERROR(check_bounds(ReadRequest{offset, dest}));
    return pread_full(offset, dest);
  }

  repro::Status read_batch(std::span<ReadRequest> requests) override {
    BatchScope batch("pread", requests);
    for (const auto& request : requests) {
      REPRO_RETURN_IF_ERROR(read_at(request.offset, request.dest));
    }
    return repro::Status::ok();
  }
};

class MmapBackend final : public FdBackendBase {
 public:
  ~MmapBackend() override {
    if (map_ != MAP_FAILED && map_ != nullptr && size_ > 0) {
      ::munmap(map_, size_);
    }
  }

  repro::Status map() {
    if (size_ == 0) return repro::Status::ok();
    map_ = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (map_ == MAP_FAILED) {
      return repro::io_error_errno("mmap: " + path_, errno);
    }
    // The scattered pattern defeats readahead by design; tell the kernel so
    // it does not prefetch pages we will never touch.
    ::madvise(map_, size_, MADV_RANDOM);
    return repro::Status::ok();
  }

  [[nodiscard]] std::string_view name() const noexcept override {
    return "mmap";
  }

  repro::Status read_at(std::uint64_t offset,
                        std::span<std::uint8_t> dest) override {
    REPRO_RETURN_IF_ERROR(check_bounds(ReadRequest{offset, dest}));
    IoMetrics& metrics = IoMetrics::get();
    metrics.read_ops.increment();
    metrics.read_bytes.add(dest.size());
    if (dest.empty()) return repro::Status::ok();  // memcpy(null,...) is UB
    // Every touched page that is cold triggers a synchronous page fault —
    // exactly the cost Figure 9 attributes to the mmap backend.
    std::memcpy(dest.data(), static_cast<const std::uint8_t*>(map_) + offset,
                dest.size());
    return repro::Status::ok();
  }

  repro::Status read_batch(std::span<ReadRequest> requests) override {
    BatchScope batch("mmap", requests);
    for (const auto& request : requests) {
      REPRO_RETURN_IF_ERROR(read_at(request.offset, request.dest));
    }
    return repro::Status::ok();
  }

 private:
  void* map_ = MAP_FAILED;
};

/// Portable asynchronous backend: a private team of I/O threads drains the
/// request batch with preads. Mirrors the paper's "team of I/O threads"
/// when io_uring is unavailable.
class ThreadAsyncBackend final : public FdBackendBase {
 public:
  explicit ThreadAsyncBackend(unsigned io_threads)
      : pool_(std::max(1U, io_threads)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "threads";
  }

  repro::Status read_at(std::uint64_t offset,
                        std::span<std::uint8_t> dest) override {
    REPRO_RETURN_IF_ERROR(check_bounds(ReadRequest{offset, dest}));
    return pread_full(offset, dest);
  }

  repro::Status read_batch(std::span<ReadRequest> requests) override {
    BatchScope batch("threads", requests);
    for (const auto& request : requests) {
      REPRO_RETURN_IF_ERROR(check_bounds(request));
    }
    std::mutex mu;
    repro::Status first_error;
    for (const auto& request : requests) {
      pool_.submit([this, &request, &mu, &first_error] {
        repro::Status status = pread_full(request.offset, request.dest);
        if (!status.is_ok()) {
          std::lock_guard<std::mutex> lock(mu);
          if (first_error.is_ok()) first_error = std::move(status);
        }
      });
    }
    pool_.wait_idle();
    return first_error;
  }

 private:
  par::ThreadPool pool_;
};

}  // namespace

repro::Result<std::unique_ptr<IoBackend>> open_backend(
    const std::filesystem::path& path, BackendKind kind,
    const BackendOptions& options) {
  switch (kind) {
    case BackendKind::kPread: {
      auto backend = std::make_unique<PreadBackend>();
      REPRO_RETURN_IF_ERROR(backend->open_file(path, options.retry));
      return std::unique_ptr<IoBackend>{std::move(backend)};
    }
    case BackendKind::kMmap: {
      auto backend = std::make_unique<MmapBackend>();
      REPRO_RETURN_IF_ERROR(backend->open_file(path, options.retry));
      REPRO_RETURN_IF_ERROR(backend->map());
      return std::unique_ptr<IoBackend>{std::move(backend)};
    }
    case BackendKind::kUring:
      return open_uring_backend(path, options);
    case BackendKind::kThreadAsync: {
      auto backend = std::make_unique<ThreadAsyncBackend>(options.io_threads);
      REPRO_RETURN_IF_ERROR(backend->open_file(path, options.retry));
      return std::unique_ptr<IoBackend>{std::move(backend)};
    }
  }
  return repro::invalid_argument("bad backend kind");
}

repro::Result<std::unique_ptr<IoBackend>> open_best(
    const std::filesystem::path& path, const BackendOptions& options) {
  if (uring_available()) {
    auto result = open_backend(path, BackendKind::kUring, options);
    // Setup can still fail after a successful probe (fd limits, seccomp
    // races): degrade rather than failing the comparison.
    if (result.is_ok() ||
        result.status().code() != repro::StatusCode::kUnsupported) {
      return result;
    }
    REPRO_LOG_WARN << "io_uring setup failed (" << result.status().message()
                   << "); falling back to the threads backend for "
                   << path.string();
  }
  return open_backend(path, BackendKind::kThreadAsync, options);
}

}  // namespace repro::io
