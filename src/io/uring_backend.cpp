#include "io/uring_backend.hpp"

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "io/retry.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace repro::io {
namespace {

/// Global registry handles — same metric names as the other backends, so
/// the registry aggregates across backend kinds (see io/backend.cpp).
struct UringMetrics {
  telemetry::Counter& read_ops;
  telemetry::Counter& read_bytes;
  telemetry::Counter& retries;
  telemetry::Counter& short_reads;
  telemetry::Counter& interrupts;
  telemetry::Counter& fallbacks;
  telemetry::Counter& batches;
  telemetry::Histogram& batch_bytes;
  telemetry::Histogram& batch_seconds;
  /// Live SQEs submitted but not yet completed; mirrored into traces by
  /// telemetry::ResourceSampler.
  telemetry::Gauge& inflight;

  static UringMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static UringMetrics* metrics = new UringMetrics{
        registry.counter("io.read.ops"),
        registry.counter("io.read.bytes"),
        registry.counter("io.retry.count"),
        registry.counter("io.short_read.count"),
        registry.counter("io.interrupt.count"),
        registry.counter("io.fallback.count"),
        registry.counter("io.batch.count"),
        registry.histogram("io.batch.bytes", telemetry::size_buckets_bytes()),
        registry.histogram("io.batch.seconds",
                           telemetry::latency_buckets_seconds()),
        registry.gauge("io.uring.inflight"),
    };
    return *metrics;
  }
};

std::atomic<bool> g_force_setup_failure{false};
std::atomic<unsigned> g_force_submit_failures{0};

bool consume_forced_submit_failure() noexcept {
  unsigned current = g_force_submit_failures.load(std::memory_order_relaxed);
  while (current > 0) {
    if (g_force_submit_failures.compare_exchange_weak(
            current, current - 1, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

template <typename T>
T* ring_ptr(void* base, std::uint32_t offset) {
  return reinterpret_cast<T*>(static_cast<std::uint8_t*>(base) + offset);
}

std::uint32_t load_acquire(const std::uint32_t* ptr) {
  return __atomic_load_n(ptr, __ATOMIC_ACQUIRE);
}

void store_release(std::uint32_t* ptr, std::uint32_t value) {
  __atomic_store_n(ptr, value, __ATOMIC_RELEASE);
}

/// Owns the ring fd and the three ring mappings.
class Ring {
 public:
  Ring() = default;
  ~Ring() { close(); }
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  repro::Status init(unsigned entries) {
    io_uring_params params;
    std::memset(&params, 0, sizeof params);
    ring_fd_ = sys_io_uring_setup(entries, &params);
    if (ring_fd_ < 0) {
      return repro::unsupported(std::string{"io_uring_setup failed: "} +
                                std::strerror(errno));
    }

    sq_entries_ = params.sq_entries;
    cq_entries_ = params.cq_entries;

    const std::size_t sq_ring_bytes =
        params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
    const std::size_t cq_ring_bytes =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);

    if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      const std::size_t bytes = std::max(sq_ring_bytes, cq_ring_bytes);
      sq_ring_ = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_SQ_RING);
      if (sq_ring_ == MAP_FAILED) {
        return repro::io_error_errno("mmap sq ring", errno);
      }
      sq_ring_bytes_ = bytes;
      cq_ring_ = sq_ring_;
      cq_ring_bytes_ = 0;  // shared mapping, unmapped via sq_ring_
    } else {
      sq_ring_ = ::mmap(nullptr, sq_ring_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_SQ_RING);
      if (sq_ring_ == MAP_FAILED) {
        return repro::io_error_errno("mmap sq ring", errno);
      }
      sq_ring_bytes_ = sq_ring_bytes;
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_,
                        IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        return repro::io_error_errno("mmap cq ring", errno);
      }
      cq_ring_bytes_ = cq_ring_bytes;
    }

    const std::size_t sqe_bytes = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      return repro::io_error_errno("mmap sqes", errno);
    }
    sqe_bytes_ = sqe_bytes;

    sq_head_ = ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.head);
    sq_tail_ = ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.tail);
    sq_mask_ = *ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.ring_mask);
    sq_array_ = ring_ptr<std::uint32_t>(sq_ring_, params.sq_off.array);

    cq_head_ = ring_ptr<std::uint32_t>(cq_ring_, params.cq_off.head);
    cq_tail_ = ring_ptr<std::uint32_t>(cq_ring_, params.cq_off.tail);
    cq_mask_ = *ring_ptr<std::uint32_t>(cq_ring_, params.cq_off.ring_mask);
    cqes_ = ring_ptr<io_uring_cqe>(cq_ring_, params.cq_off.cqes);
    return repro::Status::ok();
  }

  [[nodiscard]] unsigned sq_entries() const noexcept { return sq_entries_; }

  /// Free SQE slots right now.
  [[nodiscard]] unsigned sq_space() const noexcept {
    return sq_entries_ - (*sq_tail_ - load_acquire(sq_head_));
  }

  /// Queue one positional read; caller must ensure sq_space() > 0.
  void push_read(int fd, void* dest, std::uint32_t len, std::uint64_t offset,
                 std::uint64_t user_data) noexcept {
    const std::uint32_t tail = *sq_tail_;
    const std::uint32_t index = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[index];
    std::memset(sqe, 0, sizeof *sqe);
    sqe->opcode = IORING_OP_READ;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<std::uint64_t>(dest);
    sqe->len = len;
    sqe->off = offset;
    sqe->user_data = user_data;
    sq_array_[index] = index;
    store_release(sq_tail_, tail + 1);
    ++pending_submit_;
  }

  /// Submit queued SQEs and wait for at least `min_complete` completions.
  /// Interrupted submits are retried in a loop (never recursively), and the
  /// pending count is re-derived from the ring pointers first: the kernel
  /// may have consumed part of the submission before the signal arrived, so
  /// blindly resubmitting the stale count would over-report.
  repro::Status enter(unsigned min_complete, unsigned max_interrupts,
                      IoStatsCounters* counters) {
    unsigned interrupts = 0;
    for (;;) {
      const int rc = sys_io_uring_enter(ring_fd_, pending_submit_,
                                        min_complete, IORING_ENTER_GETEVENTS);
      if (rc >= 0) {
        pending_submit_ -= std::min(pending_submit_,
                                    static_cast<unsigned>(rc));
        return repro::Status::ok();
      }
      if (errno == EINTR || errno == EAGAIN) {
        const unsigned unsubmitted = *sq_tail_ - load_acquire(sq_head_);
        pending_submit_ = std::min(pending_submit_, unsubmitted);
        counters->interrupts.fetch_add(1, std::memory_order_relaxed);
        if (++interrupts > max_interrupts) {
          return repro::io_error("io_uring_enter interrupted " +
                                 std::to_string(interrupts) +
                                 " times without progress");
        }
        continue;
      }
      return repro::io_error_errno("io_uring_enter", errno);
    }
  }

  /// SQEs pushed but not yet consumed by the kernel (re-derived from the
  /// ring pointers, not the possibly stale pending_submit_ count).
  [[nodiscard]] unsigned unsubmitted() const noexcept {
    return *sq_tail_ - load_acquire(sq_head_);
  }

  /// Pop one completion if available.
  bool pop_completion(io_uring_cqe* out) noexcept {
    const std::uint32_t head = *cq_head_;
    if (head == load_acquire(cq_tail_)) return false;
    *out = cqes_[head & cq_mask_];
    store_release(cq_head_, head + 1);
    return true;
  }

 private:
  void close() {
    if (sqes_ != nullptr && sqes_ != MAP_FAILED) ::munmap(sqes_, sqe_bytes_);
    if (cq_ring_bytes_ > 0 && cq_ring_ != nullptr && cq_ring_ != MAP_FAILED) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  int ring_fd_ = -1;
  unsigned sq_entries_ = 0;
  unsigned cq_entries_ = 0;
  unsigned pending_submit_ = 0;

  void* sq_ring_ = nullptr;
  std::size_t sq_ring_bytes_ = 0;
  void* cq_ring_ = nullptr;
  std::size_t cq_ring_bytes_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sqe_bytes_ = 0;

  std::uint32_t* sq_head_ = nullptr;
  std::uint32_t* sq_tail_ = nullptr;
  std::uint32_t sq_mask_ = 0;
  std::uint32_t* sq_array_ = nullptr;
  std::uint32_t* cq_head_ = nullptr;
  std::uint32_t* cq_tail_ = nullptr;
  std::uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;
};

class UringBackend final : public IoBackend {
 public:
  ~UringBackend() override {
    if (fd_ >= 0) ::close(fd_);
  }

  repro::Status open_file(const std::filesystem::path& path,
                          const BackendOptions& options) {
    options_ = options;
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) {
      return repro::io_error_errno("open: " + path.string(), errno);
    }
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      return repro::io_error_errno("lseek: " + path.string(), errno);
    }
    size_ = static_cast<std::uint64_t>(end);
    path_ = path.string();
    return ring_.init(std::max(1U, options.queue_depth));
  }

  [[nodiscard]] std::uint64_t size() const noexcept override { return size_; }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "io_uring";
  }

  [[nodiscard]] IoStats stats() const noexcept override {
    IoStats out = counters_.snapshot();
    if (fallback_ != nullptr) out += fallback_->stats();
    return out;
  }

  repro::Status read_at(std::uint64_t offset,
                        std::span<std::uint8_t> dest) override {
    ReadRequest request{offset, dest};
    return read_batch(std::span<ReadRequest>(&request, 1));
  }

  repro::Status read_batch(std::span<ReadRequest> requests) override {
    if (fallback_ != nullptr) return fallback_->read_batch(requests);

    UringMetrics& metrics = UringMetrics::get();
    std::uint64_t total_bytes = 0;
    for (const auto& request : requests) total_bytes += request.dest.size();
    metrics.read_ops.add(requests.size());
    metrics.read_bytes.add(total_bytes);
    metrics.batches.increment();
    metrics.batch_bytes.record(static_cast<double>(total_bytes));
    Stopwatch batch_watch;
    telemetry::TraceSpan batch_span("io.batch");
    batch_span.arg("backend", std::string_view{"io_uring"})
        .arg("requests", static_cast<std::uint64_t>(requests.size()))
        .arg("bytes", total_bytes);
    struct SecondsRecorder {
      Stopwatch& watch;
      telemetry::Histogram& hist;
      ~SecondsRecorder() { hist.record(watch.seconds()); }
    } seconds_recorder{batch_watch, metrics.batch_seconds};

    for (const auto& request : requests) {
      // Overflow-safe bounds check (offset + len can wrap uint64).
      if (request.dest.size() > size_ ||
          request.offset > size_ - request.dest.size()) {
        return repro::out_of_range("read past EOF of " + path_);
      }
    }

    // Per-request progress; short reads, oversized (> 4 GiB) requests and
    // transient completion errors are resubmitted for the remainder.
    struct Progress {
      std::uint64_t done = 0;
      unsigned interrupts = 0;  // -EINTR/-EAGAIN completions for this request
      unsigned attempts = 1;    // transient -EIO retries consumed
    };
    std::vector<Progress> progress(requests.size());
    const RetryPolicy& policy = options_.retry;

    std::size_t next_to_queue = 0;   // first request not yet queued
    std::size_t outstanding = 0;     // queued but not finished
    std::size_t finished = 0;
    std::vector<std::size_t> retry;  // continuations + transient retries

    while (finished < requests.size()) {
      // Fill the submission queue: continuations first, then fresh requests.
      while (ring_.sq_space() > 0 &&
             (!retry.empty() || next_to_queue < requests.size())) {
        std::size_t index;
        if (!retry.empty()) {
          index = retry.back();
          retry.pop_back();
        } else {
          index = next_to_queue++;
        }
        ReadRequest& request = requests[index];
        const std::uint64_t done = progress[index].done;
        if (request.dest.size() == done) {  // zero-length request
          ++finished;
          continue;
        }
        ring_.push_read(fd_, request.dest.data() + done,
                        clamp_uring_read_len(request.dest.size() - done),
                        request.offset + done, index);
        ++outstanding;
      }
      metrics.inflight.set(static_cast<double>(outstanding));

      // One syscall submits the whole batch and waits for >= 1 completion.
      repro::Status entered =
          consume_forced_submit_failure()
              ? repro::io_error("io_uring_enter: forced submit failure "
                                "(testing hook)")
              : ring_.enter(outstanding > 0 ? 1 : 0, policy.max_interrupts,
                            &counters_);
      if (!entered.is_ok()) {
        return degrade_to_threads(std::move(entered), outstanding, requests);
      }

      io_uring_cqe cqe;
      while (ring_.pop_completion(&cqe)) {
        --outstanding;
        const std::size_t index = static_cast<std::size_t>(cqe.user_data);
        if (cqe.res < 0) {
          const int err = -cqe.res;
          if (errno_is_interrupt(err)) {
            counters_.interrupts.fetch_add(1, std::memory_order_relaxed);
            metrics.interrupts.increment();
            if (++progress[index].interrupts > policy.max_interrupts) {
              return repro::io_error("io_uring read interrupted repeatedly: " +
                                     path_);
            }
            retry.push_back(index);
            continue;
          }
          if (policy.retry_transient_io && errno_is_transient_io(err) &&
              progress[index].attempts < policy.max_attempts) {
            counters_.retries.fetch_add(1, std::memory_order_relaxed);
            metrics.retries.increment();
            backoff_sleep(policy, progress[index].attempts);
            ++progress[index].attempts;
            retry.push_back(index);
            continue;
          }
          return repro::io_error_errno("io_uring read: " + path_, err);
        }
        if (cqe.res == 0) {
          return repro::io_error("unexpected EOF in " + path_);
        }
        progress[index].done += static_cast<std::uint64_t>(cqe.res);
        if (progress[index].done < requests[index].dest.size()) {
          counters_.short_reads.fetch_add(1, std::memory_order_relaxed);
          metrics.short_reads.increment();
          retry.push_back(index);  // short read: continue where it stopped
        } else {
          progress[index].interrupts = 0;
          ++finished;
        }
      }
      metrics.inflight.set(static_cast<double>(outstanding));
    }
    return repro::Status::ok();
  }

 private:
  /// Mid-batch submit failure: switch this backend to a thread-async
  /// fallback over the same file and re-issue the whole batch there (reads
  /// are idempotent). Only safe once no submitted SQE is still in flight —
  /// the kernel would otherwise write the buffers concurrently — so with
  /// reads outstanding we drain the completion queue first and give up if
  /// it does not empty.
  repro::Status degrade_to_threads(repro::Status cause, std::size_t outstanding,
                                   std::span<ReadRequest> requests) {
    // SQEs the kernel never consumed are not in flight: they stay inert in
    // the abandoned ring (a failed submit leaves them there), so only
    // submitted-but-uncompleted reads can touch our buffers.
    std::size_t in_flight =
        outstanding -
        std::min<std::size_t>(outstanding, ring_.unsubmitted());
    io_uring_cqe cqe;
    for (int spin = 0; in_flight > 0 && spin < 10000; ++spin) {
      while (ring_.pop_completion(&cqe)) --in_flight;
      if (in_flight > 0) std::this_thread::yield();
    }
    if (in_flight > 0) {
      return cause.with_context("io_uring submit failed with reads in flight");
    }
    auto fallback = open_backend(path_, BackendKind::kThreadAsync, options_);
    if (!fallback.is_ok()) {
      return cause.with_context("io_uring submit failed and fallback open "
                                "also failed (" +
                                fallback.status().to_string() + ")");
    }
    REPRO_LOG_WARN << "io_uring submit failed (" << cause.to_string()
                   << "); degrading to the threads backend for " << path_;
    counters_.fallbacks.fetch_add(1, std::memory_order_relaxed);
    UringMetrics::get().fallbacks.increment();
    fallback_ = std::move(fallback).value();
    return fallback_->read_batch(requests);
  }

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
  BackendOptions options_;
  Ring ring_;
  IoStatsCounters counters_;
  std::unique_ptr<IoBackend> fallback_;
};

}  // namespace

bool uring_available() noexcept {
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof params);
    const int fd = sys_io_uring_setup(2, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
}

repro::Result<std::unique_ptr<IoBackend>> open_uring_backend(
    const std::filesystem::path& path, const BackendOptions& options) {
  if (g_force_setup_failure.load(std::memory_order_relaxed)) {
    return repro::unsupported("io_uring_setup failed (testing hook)");
  }
  if (!uring_available()) {
    return repro::unsupported("io_uring not available in this environment");
  }
  auto backend = std::make_unique<UringBackend>();
  REPRO_RETURN_IF_ERROR(backend->open_file(path, options));
  return std::unique_ptr<IoBackend>{std::move(backend)};
}

void set_uring_setup_failure_for_testing(bool enabled) noexcept {
  g_force_setup_failure.store(enabled, std::memory_order_relaxed);
}

void set_uring_submit_failures_for_testing(unsigned count) noexcept {
  g_force_submit_failures.store(count, std::memory_order_relaxed);
}

}  // namespace repro::io
