#include "io/mmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <mutex>

#include "telemetry/metrics.hpp"

namespace repro::io {

namespace {

struct MmapMetrics {
  telemetry::Counter& maps;
  telemetry::Counter& map_bytes;
  telemetry::Counter& failures;

  static MmapMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static MmapMetrics* metrics = new MmapMetrics{
        registry.counter("io.mmap.maps"),
        registry.counter("io.mmap.bytes"),
        registry.counter("io.mmap.failures"),
    };
    return *metrics;
  }
};

std::mutex g_fault_mu;
unsigned g_fail_next_mmaps = 0;
std::string g_fail_path_substring;

bool consume_injected_failure(const std::filesystem::path& path) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  if (g_fail_next_mmaps == 0) return false;
  if (!g_fail_path_substring.empty() &&
      path.string().find(g_fail_path_substring) == std::string::npos) {
    return false;
  }
  --g_fail_next_mmaps;
  return true;
}

}  // namespace

void set_fail_next_mmaps_for_testing(unsigned count,
                                     std::string path_substring) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  g_fail_next_mmaps = count;
  g_fail_path_substring = std::move(path_substring);
}

void MmapRegion::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
}

MmapRegion::~MmapRegion() { reset(); }

MmapRegion::MmapRegion(MmapRegion&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

MmapRegion& MmapRegion::operator=(MmapRegion&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

repro::Result<MmapRegion> MmapRegion::open(
    const std::filesystem::path& path) {
  if (consume_injected_failure(path)) {
    MmapMetrics::get().failures.increment();
    return repro::unavailable("mmap failure injected for testing: " +
                              path.string());
  }

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    MmapMetrics::get().failures.increment();
    return repro::io_error_errno("open " + path.string(), errno);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    MmapMetrics::get().failures.increment();
    return repro::io_error_errno("fstat " + path.string(), saved);
  }

  MmapRegion region;
  if (st.st_size == 0) {
    ::close(fd);
    return region;  // valid empty region; nothing to map
  }

  // MAP_PRIVATE read-only still shares page-cache pages with every other
  // reader of the file; there are no writes, so no COW copies ever happen.
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                      PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_errno = errno;
  ::close(fd);
  if (addr == MAP_FAILED) {
    MmapMetrics::get().failures.increment();
    return repro::io_error_errno("mmap " + path.string(), map_errno);
  }
  // Best-effort: the caller is about to walk the metadata, so start faulting
  // pages in now instead of one major fault per 4 KiB of tree.
  (void)::madvise(addr, static_cast<std::size_t>(st.st_size), MADV_WILLNEED);

  region.data_ = static_cast<const std::uint8_t*>(addr);
  region.size_ = static_cast<std::size_t>(st.st_size);
  MmapMetrics::get().maps.increment();
  MmapMetrics::get().map_bytes.add(region.size_);
  return region;
}

}  // namespace repro::io
