// Scattered-read planning (the "Low-Latency Optimizations for Scattered I/O"
// design principle).
//
// Stage 2 receives a sorted list of candidate chunk indices. Runs of
// consecutive chunks are contiguous on disk, and near-misses separated by a
// small gap can still be cheaper to read as one extent than as two seeks —
// the planner merges both cases (gap tolerance configurable; the coalescing
// ablation bench sweeps it). Each plan entry remembers where every chunk's
// payload lands inside the destination buffer, gaps included.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace repro::io {

/// One merged file extent plus the buffer range it fills.
struct ReadExtent {
  std::uint64_t file_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t buffer_offset = 0;
};

/// Where one candidate chunk's payload lives in the slice buffer.
struct ChunkPlacement {
  std::uint64_t chunk = 0;          ///< chunk index within the checkpoint
  std::uint64_t buffer_offset = 0;  ///< payload start within the buffer
  std::uint64_t length = 0;         ///< payload bytes (tail chunk may be short)
};

struct ReadPlan {
  std::vector<ReadExtent> extents;
  std::vector<ChunkPlacement> placements;
  std::uint64_t buffer_bytes = 0;  ///< total destination buffer size
  std::uint64_t payload_bytes = 0; ///< chunk bytes actually wanted
  std::uint64_t waste_bytes = 0;   ///< gap bytes read only to merge extents
};

struct PlanOptions {
  /// Merge two chunk ranges when the file gap between them is <= this many
  /// bytes. 0 merges only strictly adjacent chunks.
  std::uint64_t coalesce_gap_bytes = 0;
};

/// Build a plan for reading `chunks` (sorted, unique) of a checkpoint of
/// `data_bytes` split into `chunk_bytes` chunks.
ReadPlan plan_chunk_reads(std::span<const std::uint64_t> chunks,
                          std::uint64_t chunk_bytes, std::uint64_t data_bytes,
                          const PlanOptions& options = {});

}  // namespace repro::io
