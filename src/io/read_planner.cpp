#include "io/read_planner.hpp"

#include <algorithm>

namespace repro::io {

ReadPlan plan_chunk_reads(std::span<const std::uint64_t> chunks,
                          std::uint64_t chunk_bytes, std::uint64_t data_bytes,
                          const PlanOptions& options) {
  ReadPlan plan;
  plan.extents.reserve(chunks.size());
  plan.placements.reserve(chunks.size());

  auto chunk_begin = [&](std::uint64_t chunk) { return chunk * chunk_bytes; };
  auto chunk_end = [&](std::uint64_t chunk) {
    return std::min(chunk_begin(chunk) + chunk_bytes, data_bytes);
  };

  std::uint64_t buffer_cursor = 0;
  std::size_t i = 0;
  while (i < chunks.size()) {
    // Grow one extent while chunks are adjacent or within the gap tolerance.
    const std::uint64_t extent_file_begin = chunk_begin(chunks[i]);
    std::uint64_t extent_file_end = chunk_end(chunks[i]);
    const std::uint64_t extent_buffer_offset = buffer_cursor;

    plan.placements.push_back(
        {chunks[i], buffer_cursor, extent_file_end - extent_file_begin});
    plan.payload_bytes += extent_file_end - extent_file_begin;

    std::size_t j = i + 1;
    while (j < chunks.size()) {
      const std::uint64_t next_begin = chunk_begin(chunks[j]);
      if (next_begin > extent_file_end + options.coalesce_gap_bytes) break;
      const std::uint64_t gap = next_begin - extent_file_end;
      const std::uint64_t next_end = chunk_end(chunks[j]);
      plan.waste_bytes += gap;
      plan.placements.push_back(
          {chunks[j],
           extent_buffer_offset + (next_begin - extent_file_begin),
           next_end - next_begin});
      plan.payload_bytes += next_end - next_begin;
      extent_file_end = next_end;
      ++j;
    }

    const std::uint64_t extent_length = extent_file_end - extent_file_begin;
    plan.extents.push_back(
        {extent_file_begin, extent_length, extent_buffer_offset});
    buffer_cursor += extent_length;
    i = j;
  }

  plan.buffer_bytes = buffer_cursor;
  return plan;
}

}  // namespace repro::io
