#include "diverge/ledger.hpp"

#include <algorithm>
#include <map>

#include "common/build_info.hpp"
#include "common/fs.hpp"
#include "telemetry/json.hpp"
#include "telemetry/json_parse.hpp"

namespace repro::diverge {

namespace {

using telemetry::json_append_number;
using telemetry::json_append_string;
using telemetry::JsonValue;

void append_record_json(std::string& out, const LedgerRecord& record) {
  out += "{\"iteration\": ";
  json_append_number(out, record.iteration);
  out += ", \"rank\": ";
  json_append_number(out, static_cast<std::uint64_t>(record.rank));
  out += ", \"field\": ";
  json_append_string(out, record.field);
  out += ", \"chunk_begin\": ";
  json_append_number(out, record.chunk_begin);
  out += ", \"chunks_total\": ";
  json_append_number(out, record.chunks_total);
  out += ", \"chunks_flagged\": ";
  json_append_number(out, record.chunks_flagged);
  out += ", \"values_compared\": ";
  json_append_number(out, record.values_compared);
  out += ", \"values_exceeding\": ";
  json_append_number(out, record.values_exceeding);
  out += ", \"max_abs_diff\": ";
  json_append_number(out, record.max_abs_diff);
  out += ", \"rel_l2_error\": ";
  json_append_number(out, record.rel_l2_error);
  out += ", \"bytes_read\": ";
  json_append_number(out, record.bytes_read);
  out += ", \"wall_seconds\": ";
  json_append_number(out, record.wall_seconds);
  out += ", \"flagged_ranges\": [";
  bool first = true;
  for (const auto& [lo, hi] : record.flagged_ranges) {
    if (!first) out += ", ";
    first = false;
    out += '[';
    json_append_number(out, lo);
    out += ", ";
    json_append_number(out, hi);
    out += ']';
  }
  out += "]}";
}

repro::Result<LedgerRecord> parse_record(const JsonValue& doc) {
  if (!doc.is_object()) {
    return repro::corrupt_data("ledger record line is not a JSON object");
  }
  LedgerRecord record;
  record.iteration = doc.u64_or("iteration", 0);
  record.rank = static_cast<std::uint32_t>(doc.u64_or("rank", 0));
  record.field = doc.string_or("field", "*");
  record.chunk_begin = doc.u64_or("chunk_begin", 0);
  record.chunks_total = doc.u64_or("chunks_total", 0);
  record.chunks_flagged = doc.u64_or("chunks_flagged", 0);
  record.values_compared = doc.u64_or("values_compared", 0);
  record.values_exceeding = doc.u64_or("values_exceeding", 0);
  record.max_abs_diff = doc.number_or("max_abs_diff", 0);
  record.rel_l2_error = doc.number_or("rel_l2_error", 0);
  record.bytes_read = doc.u64_or("bytes_read", 0);
  record.wall_seconds = doc.number_or("wall_seconds", 0);
  if (const JsonValue* ranges = doc.find("flagged_ranges");
      ranges != nullptr && ranges->is_array()) {
    for (const JsonValue& range : ranges->array) {
      if (!range.is_array() || range.array.size() != 2 ||
          range.array[0].kind != JsonValue::Kind::kNumber ||
          range.array[1].kind != JsonValue::Kind::kNumber) {
        return repro::corrupt_data("malformed flagged_ranges entry");
      }
      record.flagged_ranges.emplace_back(
          static_cast<std::uint64_t>(range.array[0].number),
          static_cast<std::uint64_t>(range.array[1].number));
    }
  }
  return record;
}

}  // namespace

void DivergenceLedger::add_pair(const ckpt::CheckpointPair& pair,
                                const cmp::CompareReport& report) {
  const std::uint64_t iteration = pair.run_a.iteration;
  const std::uint32_t rank = pair.run_a.rank;
  // Pair-level cost: both runs' streamed bytes plus metadata.
  const std::uint64_t bytes_read =
      2 * report.bytes_read_per_file + report.metadata_bytes_read;

  if (report.field_divergences.empty()) {
    // No per-field stats: the whole checkpoint is one "*" slice.
    LedgerRecord record;
    record.iteration = iteration;
    record.rank = rank;
    record.field = "*";
    record.chunks_total = report.chunks_total;
    record.chunks_flagged = report.chunks_flagged;
    record.values_compared = report.values_compared;
    record.values_exceeding = report.values_exceeding;
    record.bytes_read = bytes_read;
    record.wall_seconds = report.total_seconds;
    records_.push_back(std::move(record));
    return;
  }

  for (const cmp::FieldDivergence& field : report.field_divergences) {
    LedgerRecord record;
    record.iteration = iteration;
    record.rank = rank;
    record.field = field.field;
    record.chunk_begin = field.chunk_begin;
    record.chunks_total = field.chunks_total;
    record.chunks_flagged = field.chunks_flagged;
    record.values_compared = field.values_compared;
    record.values_exceeding = field.values_exceeding;
    record.max_abs_diff = field.max_abs_diff;
    record.rel_l2_error = field.rel_l2_error;
    record.bytes_read = bytes_read;
    record.wall_seconds = report.total_seconds;
    record.flagged_ranges = field.flagged_ranges;
    records_.push_back(std::move(record));
  }
}

void DivergenceLedger::add_history(const cmp::HistoryReport& history) {
  for (const auto& [pair, report] : history.pairs) add_pair(pair, report);
}

LedgerSummary DivergenceLedger::summarize() const {
  LedgerSummary summary;
  std::map<std::string, FieldSummary> fields;
  std::map<std::uint32_t, RankSummary> ranks;

  // Records are appended in comparison order, but aggregation must not
  // depend on it: scan for minima/maxima explicitly.
  for (const LedgerRecord& record : records_) {
    FieldSummary& field = fields[record.field];
    field.field = record.field;
    RankSummary& rank = ranks[record.rank];
    rank.rank = record.rank;
    if (!record.diverged()) continue;

    ++field.records_diverged;
    field.peak_max_abs_diff =
        std::max(field.peak_max_abs_diff, record.max_abs_diff);
    if (!field.first_divergent_iteration.has_value() ||
        record.iteration < *field.first_divergent_iteration) {
      field.first_divergent_iteration = record.iteration;
      field.first_divergent_rank = record.rank;
      field.first_max_abs_diff = record.max_abs_diff;
    } else if (record.iteration == *field.first_divergent_iteration) {
      // Same iteration, another rank: report the lowest diverged rank, and
      // let first-iteration severity cover every rank of that iteration.
      field.first_divergent_rank =
          std::min(*field.first_divergent_rank, record.rank);
      field.first_max_abs_diff =
          std::max(field.first_max_abs_diff, record.max_abs_diff);
    }

    if (!rank.first_divergent_iteration.has_value() ||
        record.iteration < *rank.first_divergent_iteration) {
      rank.first_divergent_iteration = record.iteration;
    }
    if (!summary.first_divergent_iteration.has_value() ||
        record.iteration < *summary.first_divergent_iteration) {
      summary.first_divergent_iteration = record.iteration;
    }
  }

  // Severity at the latest diverged iteration per field (any rank).
  for (auto& [name, field] : fields) {
    std::optional<std::uint64_t> last_iteration;
    for (const LedgerRecord& record : records_) {
      if (record.field != name || !record.diverged()) continue;
      if (!last_iteration.has_value() || record.iteration > *last_iteration) {
        last_iteration = record.iteration;
        field.last_max_abs_diff = record.max_abs_diff;
      } else if (record.iteration == *last_iteration) {
        field.last_max_abs_diff =
            std::max(field.last_max_abs_diff, record.max_abs_diff);
      }
    }
  }

  summary.fields.reserve(fields.size());
  for (auto& [name, field] : fields) summary.fields.push_back(std::move(field));
  summary.ranks.reserve(ranks.size());
  for (auto& [id, rank] : ranks) summary.ranks.push_back(rank);
  return summary;
}

repro::Status DivergenceLedger::write_jsonl(
    const std::filesystem::path& path) const {
  std::string out;
  out.reserve(256 + records_.size() * 256);

  const BuildInfo build = repro::build_info();
  out += "{\"schema\": ";
  json_append_string(out, kLedgerSchema);
  out += ", \"version\": ";
  json_append_number(out, static_cast<std::uint64_t>(kLedgerVersion));
  out += ", \"run_a\": ";
  json_append_string(out, run_a_);
  out += ", \"run_b\": ";
  json_append_string(out, run_b_);
  out += ", \"error_bound\": ";
  json_append_number(out, error_bound_);
  out += ", \"provenance\": {\"compiler\": ";
  json_append_string(out, build.compiler);
  out += ", \"build_type\": ";
  json_append_string(out, build.build_type);
  out += ", \"version\": ";
  json_append_string(out, build.version);
  out += ", \"simd_level\": ";
  json_append_string(out, build.simd_level);
  out += "}}\n";

  for (const LedgerRecord& record : records_) {
    append_record_json(out, record);
    out += '\n';
  }

  return repro::write_file(
             path, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(out.data()),
                       out.size()))
      .with_context("writing divergence ledger");
}

repro::Result<DivergenceLedger> DivergenceLedger::load(
    const std::filesystem::path& path) {
  REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> bytes,
                         repro::read_file(path));
  const std::string_view text(reinterpret_cast<const char*>(bytes.data()),
                              bytes.size());

  DivergenceLedger ledger;
  bool saw_header = false;
  std::size_t pos = 0;
  std::size_t line_number = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    ++line_number;
    if (line.empty()) continue;

    std::optional<JsonValue> doc = telemetry::json_parse(line);
    if (!doc.has_value()) {
      return repro::corrupt_data("ledger line " +
                                 std::to_string(line_number) +
                                 " is not valid JSON: " + path.string());
    }

    if (!saw_header) {
      const std::string schema = doc->string_or("schema", "");
      if (schema != kLedgerSchema) {
        return repro::corrupt_data("not a divergence ledger (schema \"" +
                                   schema + "\"): " + path.string());
      }
      const std::uint64_t version = doc->u64_or("version", 0);
      if (version == 0 || version > static_cast<std::uint64_t>(kLedgerVersion)) {
        return repro::unsupported("ledger version " +
                                  std::to_string(version) +
                                  " is newer than this build supports (" +
                                  std::to_string(kLedgerVersion) + ")");
      }
      ledger.run_a_ = doc->string_or("run_a", "");
      ledger.run_b_ = doc->string_or("run_b", "");
      ledger.error_bound_ = doc->number_or("error_bound", 0);
      saw_header = true;
      continue;
    }

    REPRO_ASSIGN_OR_RETURN(LedgerRecord record, parse_record(*doc));
    ledger.records_.push_back(std::move(record));
  }

  if (!saw_header) {
    return repro::corrupt_data("empty ledger (no header line): " +
                               path.string());
  }
  return ledger;
}

}  // namespace repro::diverge
