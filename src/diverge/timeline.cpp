#include "diverge/timeline.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "common/table.hpp"
#include "telemetry/json.hpp"

namespace repro::diverge {

namespace {

using telemetry::json_append_number;
using telemetry::json_append_string;

/// Worst-rank aggregation of one (iteration, field) cell.
struct Cell {
  std::uint64_t values_exceeding = 0;  ///< summed over ranks
  std::uint64_t chunks_flagged = 0;    ///< summed over ranks
  std::uint64_t chunks_total = 0;      ///< per-rank total × ranks seen
  double max_abs_diff = 0;             ///< max over ranks
  std::uint32_t ranks_diverged = 0;
};

/// ASCII intensity ramp for heatmap cells, lowest to highest.
constexpr std::string_view kRamp = " .:-=+*#%@";

char ramp_char(double fraction) {
  if (fraction <= 0) return kRamp.front();
  const std::size_t last = kRamp.size() - 1;
  const std::size_t index = std::min(
      last, static_cast<std::size_t>(1 + fraction * double(last - 1)));
  return kRamp[index];
}

/// ANSI color for an intensity: green (faint) → yellow → red (severe).
const char* ansi_color(double fraction) {
  if (fraction <= 0) return "\x1b[2m";        // dim
  if (fraction < 0.25) return "\x1b[32m";     // green
  if (fraction < 0.6) return "\x1b[33m";      // yellow
  return "\x1b[31m";                          // red
}

void render_json(const DivergenceLedger& ledger, const LedgerSummary& summary,
                 const std::map<std::pair<std::uint64_t, std::string>, Cell>&
                     cells,
                 std::string& out) {
  out += "{\n  \"schema\": \"repro.divergence.timeline\",\n  \"version\": 1";
  out += ",\n  \"run_a\": ";
  json_append_string(out, ledger.run_a());
  out += ",\n  \"run_b\": ";
  json_append_string(out, ledger.run_b());
  out += ",\n  \"error_bound\": ";
  json_append_number(out, ledger.error_bound());
  out += ",\n  \"first_divergent_iteration\": ";
  if (summary.first_divergent_iteration.has_value()) {
    json_append_number(out, *summary.first_divergent_iteration);
  } else {
    out += "null";
  }
  out += ",\n  \"fields\": [";
  bool first = true;
  for (const FieldSummary& field : summary.fields) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"field\": ";
    json_append_string(out, field.field);
    out += ", \"first_divergent_iteration\": ";
    if (field.first_divergent_iteration.has_value()) {
      json_append_number(out, *field.first_divergent_iteration);
    } else {
      out += "null";
    }
    out += ", \"first_divergent_rank\": ";
    if (field.first_divergent_rank.has_value()) {
      json_append_number(out,
                         static_cast<std::uint64_t>(*field.first_divergent_rank));
    } else {
      out += "null";
    }
    out += ", \"records_diverged\": ";
    json_append_number(out, field.records_diverged);
    out += ", \"peak_max_abs_diff\": ";
    json_append_number(out, field.peak_max_abs_diff);
    out += ", \"severity_growth\": ";
    json_append_number(out, field.severity_growth());
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"ranks\": [";
  first = true;
  for (const RankSummary& rank : summary.ranks) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"rank\": ";
    json_append_number(out, static_cast<std::uint64_t>(rank.rank));
    out += ", \"first_divergent_iteration\": ";
    if (rank.first_divergent_iteration.has_value()) {
      json_append_number(out, *rank.first_divergent_iteration);
    } else {
      out += "null";
    }
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  out += ",\n  \"cells\": [";
  first = true;
  for (const auto& [key, cell] : cells) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"iteration\": ";
    json_append_number(out, key.first);
    out += ", \"field\": ";
    json_append_string(out, key.second);
    out += ", \"values_exceeding\": ";
    json_append_number(out, cell.values_exceeding);
    out += ", \"chunks_flagged\": ";
    json_append_number(out, cell.chunks_flagged);
    out += ", \"chunks_total\": ";
    json_append_number(out, cell.chunks_total);
    out += ", \"max_abs_diff\": ";
    json_append_number(out, cell.max_abs_diff);
    out += ", \"ranks_diverged\": ";
    json_append_number(out, static_cast<std::uint64_t>(cell.ranks_diverged));
    out += "}";
  }
  out += first ? "]" : "\n  ]";
  out += "\n}\n";
}

}  // namespace

std::string render_timeline(const DivergenceLedger& ledger,
                            const TimelineOptions& options) {
  const LedgerSummary summary = ledger.summarize();

  // Aggregate records into (iteration, field) cells and collect the axes.
  std::set<std::uint64_t> iterations;
  std::set<std::string> field_names;
  std::map<std::pair<std::uint64_t, std::string>, Cell> cells;
  for (const LedgerRecord& record : ledger.records()) {
    iterations.insert(record.iteration);
    field_names.insert(record.field);
    Cell& cell = cells[{record.iteration, record.field}];
    cell.values_exceeding += record.values_exceeding;
    cell.chunks_flagged += record.chunks_flagged;
    cell.chunks_total += record.chunks_total;
    cell.max_abs_diff = std::max(cell.max_abs_diff, record.max_abs_diff);
    if (record.diverged()) ++cell.ranks_diverged;
  }

  std::string out;
  if (options.json) {
    render_json(ledger, summary, cells, out);
    return out;
  }

  out += strprintf("Divergence timeline: %s vs %s (eps=%g, %zu records)\n",
                   ledger.run_a().c_str(), ledger.run_b().c_str(),
                   ledger.error_bound(),
                   ledger.records().size());

  // --- iteration × field table. "." = within bound everywhere; otherwise
  // flagged/total chunks and the worst |a-b| across ranks.
  std::vector<std::string> headers{"iter"};
  for (const std::string& name : field_names) headers.push_back(name);
  TextTable table(std::move(headers));
  for (const std::uint64_t iteration : iterations) {
    std::vector<std::string> row{std::to_string(iteration)};
    for (const std::string& name : field_names) {
      const auto it = cells.find({iteration, name});
      if (it == cells.end()) {
        row.push_back("-");  // not captured on this iteration
      } else if (it->second.values_exceeding == 0) {
        row.push_back(".");
      } else {
        row.push_back(strprintf(
            "%llu/%llu |d|=%.2e",
            static_cast<unsigned long long>(it->second.chunks_flagged),
            static_cast<unsigned long long>(it->second.chunks_total),
            it->second.max_abs_diff));
      }
    }
    table.add_row(std::move(row));
  }
  out += table.to_string();

  // --- first-divergence summary.
  if (summary.first_divergent_iteration.has_value()) {
    out += strprintf("\nfirst divergence: iteration %llu\n",
                     static_cast<unsigned long long>(
                         *summary.first_divergent_iteration));
  } else {
    out += "\nno divergence within the error bound\n";
  }
  for (const FieldSummary& field : summary.fields) {
    if (!field.first_divergent_iteration.has_value()) continue;
    out += strprintf(
        "  field %-12s first diverged at iteration %llu (rank %u), "
        "peak |d|=%.2e, severity growth %.2fx\n",
        field.field.c_str(),
        static_cast<unsigned long long>(*field.first_divergent_iteration),
        *field.first_divergent_rank, field.peak_max_abs_diff,
        field.severity_growth());
  }
  for (const RankSummary& rank : summary.ranks) {
    if (!rank.first_divergent_iteration.has_value()) continue;
    out += strprintf("  rank %-3u first diverged at iteration %llu\n",
                     rank.rank,
                     static_cast<unsigned long long>(
                         *rank.first_divergent_iteration));
  }

  // --- chunk-space heatmap per flagged field: one row per iteration, cell
  // intensity = fraction of the bucket's chunk-slots flagged (summed over
  // ranks; a slot is one chunk of one rank).
  for (const std::string& name : field_names) {
    // Skip fields that never flagged a chunk, and "*" records with no
    // chunk-range information.
    std::uint64_t chunk_begin = 0;
    std::uint64_t chunk_count = 0;
    std::uint32_t ranks_seen = 0;
    bool any_flagged = false;
    for (const LedgerRecord& record : ledger.records()) {
      if (record.field != name) continue;
      if (record.chunks_total == 0) continue;
      chunk_begin = record.chunk_begin;
      chunk_count = record.chunks_total;
      ranks_seen = std::max(ranks_seen, record.rank + 1);
      if (record.chunks_flagged > 0) any_flagged = true;
    }
    if (!any_flagged || chunk_count == 0) continue;

    const std::size_t width =
        std::max<std::size_t>(1, std::min<std::size_t>(options.heatmap_width,
                                                       chunk_count));
    const double chunks_per_cell =
        static_cast<double>(chunk_count) / static_cast<double>(width);
    out += strprintf(
        "\nheatmap %s  chunks [%llu, %llu]  (1 cell = %.1f chunks x %u "
        "ranks)\n",
        name.c_str(), static_cast<unsigned long long>(chunk_begin),
        static_cast<unsigned long long>(chunk_begin + chunk_count - 1),
        chunks_per_cell, ranks_seen);

    for (const std::uint64_t iteration : iterations) {
      // Flagged chunk-slots per bucket, summed over this iteration's ranks.
      std::vector<double> flagged(width, 0.0);
      bool have_row = false;
      for (const LedgerRecord& record : ledger.records()) {
        if (record.field != name || record.iteration != iteration) continue;
        have_row = true;
        for (const auto& [lo, hi] : record.flagged_ranges) {
          for (std::uint64_t chunk = lo; chunk <= hi; ++chunk) {
            if (chunk < chunk_begin || chunk >= chunk_begin + chunk_count) {
              continue;
            }
            const std::size_t bucket = static_cast<std::size_t>(
                static_cast<double>(chunk - chunk_begin) / chunks_per_cell);
            flagged[std::min(bucket, width - 1)] += 1.0;
          }
        }
      }
      if (!have_row) continue;
      const double slots_per_cell =
          chunks_per_cell * std::max<std::uint32_t>(1, ranks_seen);
      out += strprintf("  iter %-5llu [",
                       static_cast<unsigned long long>(iteration));
      for (std::size_t cell = 0; cell < width; ++cell) {
        const double fraction =
            std::min(1.0, flagged[cell] / slots_per_cell);
        if (options.ansi) {
          out += ansi_color(fraction);
          out += ramp_char(fraction);
          out += "\x1b[0m";
        } else {
          out += ramp_char(fraction);
        }
      }
      out += "]\n";
    }
  }

  return out;
}

}  // namespace repro::diverge
