// Divergence timeline rendering for `repro-cli timeline`.
//
// Turns a DivergenceLedger into the forensics view a human reads first:
//
//   * an iteration × field table (worst rank per cell) showing when each
//     field started exceeding ε and how severe it got;
//   * per-field / per-rank first-divergence and severity-growth summaries;
//   * a chunk-space mismatch heatmap per flagged field — one row per
//     iteration, chunk range bucketed into fixed-width columns, cell
//     intensity = fraction of the bucket's chunks flagged by stage 1.
//
// Plain-ASCII by default; `ansi` adds a green→red color ramp. `json`
// replaces the tables with a machine-readable document (schema
// "repro.divergence.timeline"). docs/OBSERVABILITY.md walks through reading
// the output.
#pragma once

#include <cstddef>
#include <string>

#include "diverge/ledger.hpp"

namespace repro::diverge {

struct TimelineOptions {
  /// Color heatmap cells with ANSI escapes (for terminals); the ASCII
  /// intensity ramp is always present so piped output stays readable.
  bool ansi = false;
  /// Emit a JSON document instead of the human tables.
  bool json = false;
  /// Columns per heatmap row; the field's chunk range is bucketed into this
  /// many cells.
  std::size_t heatmap_width = 64;
};

/// Renders the ledger. Pure function of the ledger contents — callers
/// decide where it goes (stdout, a file, a test assertion).
[[nodiscard]] std::string render_timeline(const DivergenceLedger& ledger,
                                          const TimelineOptions& options);

[[nodiscard]] inline std::string render_timeline(
    const DivergenceLedger& ledger) {
  return render_timeline(ledger, TimelineOptions{});
}

}  // namespace repro::diverge
