// History-wide divergence ledger (the forensics core).
//
// A ledger is the durable record of one history comparison: one record per
// (iteration, rank, field) summarizing how far that slice of the two runs
// disagreed — chunks flagged vs. total, values exceeding ε, max |a-b|,
// relative L2 error over the streamed regions, plus the pair-level I/O cost
// (bytes read, wall seconds; repeated on each of the pair's field records
// since I/O is not attributable per field).
//
// Persistence is versioned JSONL (docs/FORMATS.md, schema
// "repro.divergence.ledger"): a header line carrying run ids, error bound
// and build provenance, then one line per record. JSONL appends cleanly and
// greps cleanly — both matter for artifacts that outlive the run that wrote
// them. load() round-trips everything write_jsonl() emits.
//
// summarize() aggregates the records into the questions forensics actually
// asks: which iteration did each field (and each rank) first diverge at, and
// how did severity grow from there. `repro-cli timeline` renders the same
// records as an iteration × field table with chunk-space heatmaps.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/history.hpp"
#include "common/status.hpp"
#include "compare/comparator.hpp"
#include "compare/report.hpp"

namespace repro::diverge {

/// Current on-disk schema version (bumped on incompatible record changes).
inline constexpr int kLedgerVersion = 1;
inline constexpr std::string_view kLedgerSchema = "repro.divergence.ledger";

/// One (iteration, rank, field) outcome. `field` is "*" for pairs compared
/// without per-field stats (the whole checkpoint as one slice).
struct LedgerRecord {
  std::uint64_t iteration = 0;
  std::uint32_t rank = 0;
  std::string field;
  std::uint64_t chunk_begin = 0;  ///< first chunk of the field's chunk range
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_flagged = 0;
  std::uint64_t values_compared = 0;
  std::uint64_t values_exceeding = 0;
  double max_abs_diff = 0;
  double rel_l2_error = 0;
  /// Pair-level quantities, identical across one pair's field records.
  std::uint64_t bytes_read = 0;
  double wall_seconds = 0;
  /// Inclusive [first, last] flagged chunk runs in global chunk space
  /// (empty for "*" records and clean fields).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flagged_ranges;

  [[nodiscard]] bool diverged() const noexcept {
    return values_exceeding > 0;
  }
};

/// Per-field aggregation across the whole history.
struct FieldSummary {
  std::string field;
  std::optional<std::uint64_t> first_divergent_iteration;
  /// Lowest diverged rank at that first iteration.
  std::optional<std::uint32_t> first_divergent_rank;
  std::uint64_t records_diverged = 0;
  double peak_max_abs_diff = 0;
  /// max |a-b| at the first / latest diverged iteration (any rank): their
  /// ratio is the severity growth over the recorded window.
  double first_max_abs_diff = 0;
  double last_max_abs_diff = 0;

  /// last/first severity ratio; 1 = stable, > 1 = growing, 0 = undefined
  /// (no divergence or zero first severity).
  [[nodiscard]] double severity_growth() const noexcept {
    return first_max_abs_diff > 0 ? last_max_abs_diff / first_max_abs_diff
                                  : 0.0;
  }
};

/// Per-rank first divergence (any field).
struct RankSummary {
  std::uint32_t rank = 0;
  std::optional<std::uint64_t> first_divergent_iteration;
};

struct LedgerSummary {
  std::optional<std::uint64_t> first_divergent_iteration;  ///< any field/rank
  std::vector<FieldSummary> fields;  ///< sorted by field name
  std::vector<RankSummary> ranks;    ///< sorted by rank
};

class DivergenceLedger {
 public:
  DivergenceLedger() = default;
  DivergenceLedger(std::string run_a, std::string run_b, double error_bound)
      : run_a_(std::move(run_a)),
        run_b_(std::move(run_b)),
        error_bound_(error_bound) {}

  [[nodiscard]] const std::string& run_a() const noexcept { return run_a_; }
  [[nodiscard]] const std::string& run_b() const noexcept { return run_b_; }
  [[nodiscard]] double error_bound() const noexcept { return error_bound_; }
  [[nodiscard]] const std::vector<LedgerRecord>& records() const noexcept {
    return records_;
  }

  void add_record(LedgerRecord record) {
    records_.push_back(std::move(record));
  }

  /// Folds one compared pair into records: one per field when the report
  /// carries field_divergences, else a single "*" record for the pair.
  void add_pair(const ckpt::CheckpointPair& pair,
                const cmp::CompareReport& report);

  /// Folds an entire history comparison (one add_pair per compared pair).
  void add_history(const cmp::HistoryReport& history);

  [[nodiscard]] LedgerSummary summarize() const;

  /// Writes header + records as JSONL (atomic publish via the fs helpers).
  [[nodiscard]] repro::Status write_jsonl(
      const std::filesystem::path& path) const;

  /// Parses a ledger written by write_jsonl(). Rejects unknown schemas and
  /// future versions; tolerates unknown extra keys within a known version.
  [[nodiscard]] static repro::Result<DivergenceLedger> load(
      const std::filesystem::path& path);

 private:
  std::string run_a_;
  std::string run_b_;
  double error_bound_ = 0;
  std::vector<LedgerRecord> records_;
};

}  // namespace repro::diverge
