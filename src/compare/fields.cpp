#include "compare/fields.hpp"

#include <optional>

#include "common/fs.hpp"
#include "common/log.hpp"
#include "compare/elementwise.hpp"
#include "merkle/compare.hpp"

namespace repro::cmp {

namespace {

double bound_for(const FieldCompareOptions& options, std::string_view name) {
  const auto it = options.field_bounds.find(name);
  return it == options.field_bounds.end() ? options.default_bound
                                          : it->second;
}

merkle::TreeParams params_for(const FieldCompareOptions& options,
                              const ckpt::FieldInfo& field) {
  merkle::TreeParams params;
  params.value_kind = field.kind;
  params.hash.error_bound = bound_for(options, field.name);
  params.hash.values_per_block = options.values_per_block;
  // Chunk size must divide into whole values of the field's kind.
  const std::uint32_t vsize = merkle::value_size(field.kind);
  params.chunk_bytes =
      std::max<std::uint64_t>(vsize, options.chunk_bytes / vsize * vsize);
  return params;
}

repro::Result<merkle::TreeBundle> load_or_build_bundle(
    const ckpt::CheckpointReader& reader,
    const std::filesystem::path& bundle_path,
    const FieldCompareOptions& options) {
  if (std::filesystem::exists(bundle_path)) {
    return merkle::TreeBundle::load(bundle_path);
  }
  if (!options.build_metadata_if_missing) {
    return repro::not_found("no metadata bundle at " + bundle_path.string());
  }
  REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> data,
                         reader.read_data());
  REPRO_ASSIGN_OR_RETURN(merkle::TreeBundle bundle,
                         build_field_bundle(reader.info(), data, options));
  const repro::Status saved = bundle.save(bundle_path);
  if (!saved.is_ok()) {
    REPRO_LOG_WARN << "could not persist bundle sidecar: "
                   << saved.to_string();
  }
  return bundle;
}

repro::Result<std::unique_ptr<io::IoBackend>> open_backend_with_fallback(
    const std::filesystem::path& path, const FieldCompareOptions& options) {
  auto result =
      io::open_backend(path, options.backend, options.backend_options);
  if (!result.is_ok() && options.backend_fallback &&
      result.status().code() == repro::StatusCode::kUnsupported) {
    return io::open_backend(path, io::BackendKind::kThreadAsync,
                            options.backend_options);
  }
  return result;
}

}  // namespace

repro::Result<merkle::TreeBundle> build_field_bundle(
    const ckpt::CheckpointInfo& info, std::span<const std::uint8_t> data,
    const FieldCompareOptions& options) {
  if (data.size() != info.data_bytes()) {
    return repro::invalid_argument(
        "data span size does not match the checkpoint layout");
  }
  merkle::TreeBundle bundle;
  for (const auto& field : info.fields) {
    const merkle::TreeParams params = params_for(options, field);
    merkle::TreeBuilder builder(params, options.exec);
    REPRO_ASSIGN_OR_RETURN(
        merkle::MerkleTree tree,
        builder.build(data.subspan(field.data_offset, field.byte_size())));
    REPRO_RETURN_IF_ERROR(bundle.add(field.name, std::move(tree)));
  }
  return bundle;
}

repro::Result<FieldsReport> compare_fields(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b,
    const FieldCompareOptions& options) {
  Stopwatch total;
  FieldsReport report;

  REPRO_ASSIGN_OR_RETURN(const ckpt::CheckpointReader reader_a,
                         ckpt::CheckpointReader::open(checkpoint_a));
  REPRO_ASSIGN_OR_RETURN(const ckpt::CheckpointReader reader_b,
                         ckpt::CheckpointReader::open(checkpoint_b));
  if (reader_a.data_bytes() != reader_b.data_bytes() ||
      reader_a.info().fields.size() != reader_b.info().fields.size()) {
    return repro::failed_precondition("checkpoint layouts differ");
  }
  for (std::size_t i = 0; i < reader_a.info().fields.size(); ++i) {
    const auto& field_a = reader_a.info().fields[i];
    const auto& field_b = reader_b.info().fields[i];
    if (field_a.name != field_b.name || field_a.kind != field_b.kind ||
        field_a.element_count != field_b.element_count) {
      return repro::failed_precondition("field layouts differ at index " +
                                        std::to_string(i));
    }
  }

  REPRO_ASSIGN_OR_RETURN(
      const merkle::TreeBundle bundle_a,
      load_or_build_bundle(reader_a, checkpoint_a.string() + ".rmrb",
                           options));
  REPRO_ASSIGN_OR_RETURN(
      const merkle::TreeBundle bundle_b,
      load_or_build_bundle(reader_b, checkpoint_b.string() + ".rmrb",
                           options));

  REPRO_ASSIGN_OR_RETURN(auto backend_a,
                         open_backend_with_fallback(checkpoint_a, options));
  REPRO_ASSIGN_OR_RETURN(auto backend_b,
                         open_backend_with_fallback(checkpoint_b, options));

  std::vector<std::uint8_t> buffer_a;
  std::vector<std::uint8_t> buffer_b;
  for (const auto& field : reader_a.info().fields) {
    const merkle::MerkleTree* tree_a = bundle_a.find(field.name);
    const merkle::MerkleTree* tree_b = bundle_b.find(field.name);
    if (tree_a == nullptr || tree_b == nullptr) {
      return repro::corrupt_data("metadata bundle missing field " +
                                 field.name);
    }
    const double bound = bound_for(options, field.name);
    if (tree_a->params().hash.error_bound != bound) {
      return repro::failed_precondition(
          "bundle for field " + field.name + " was built at bound " +
          std::to_string(tree_a->params().hash.error_bound) +
          ", requested " + std::to_string(bound) +
          "; delete the .rmrb sidecars to rebuild");
    }

    FieldReport field_report;
    field_report.field = field.name;
    field_report.error_bound = bound;
    field_report.chunks_total = tree_a->num_chunks();

    // Stage 1 per field.
    merkle::TreeCompareOptions tree_options;
    tree_options.exec = options.exec;
    REPRO_ASSIGN_OR_RETURN(
        const std::vector<std::uint64_t> candidates,
        merkle::compare_trees(*tree_a, *tree_b, tree_options));
    field_report.chunks_flagged = candidates.size();

    // Stage 2 per field: scattered reads offset into this field's region.
    if (!candidates.empty()) {
      const io::ReadPlan plan = io::plan_chunk_reads(
          candidates, tree_a->params().chunk_bytes, field.byte_size(),
          options.plan);
      buffer_a.resize(plan.buffer_bytes);
      buffer_b.resize(plan.buffer_bytes);
      const std::uint64_t field_base =
          reader_a.data_offset() + field.data_offset;
      std::vector<io::ReadRequest> requests;
      requests.reserve(plan.extents.size());
      auto issue = [&](io::IoBackend& backend,
                       std::vector<std::uint8_t>& buffer) {
        requests.clear();
        for (const auto& extent : plan.extents) {
          requests.push_back(
              {field_base + extent.file_offset,
               std::span<std::uint8_t>(buffer.data() + extent.buffer_offset,
                                       extent.length)});
        }
        return backend.read_batch(requests);
      };
      REPRO_RETURN_IF_ERROR(issue(*backend_a, buffer_a));
      REPRO_RETURN_IF_ERROR(issue(*backend_b, buffer_b));
      field_report.bytes_read_per_file = plan.buffer_bytes;

      ElementwiseOptions element_options;
      element_options.exec = options.exec;
      element_options.collect_diffs = options.collect_diffs;
      element_options.max_diffs = options.max_diffs;
      const std::uint32_t vsize = merkle::value_size(field.kind);
      std::vector<ElementDiff> raw_diffs;
      for (const auto& placement : plan.placements) {
        const std::uint64_t base_value =
            placement.chunk * tree_a->params().chunk_bytes / vsize;
        const auto result = compare_region(
            std::span<const std::uint8_t>(
                buffer_a.data() + placement.buffer_offset, placement.length),
            std::span<const std::uint8_t>(
                buffer_b.data() + placement.buffer_offset, placement.length),
            field.kind, bound, base_value, element_options,
            options.collect_diffs ? &raw_diffs : nullptr);
        field_report.values_compared += result.values_compared;
        field_report.values_exceeding += result.values_exceeding;
      }
      if (options.collect_diffs) {
        for (const auto& raw : raw_diffs) {
          if (report.diffs.size() >= options.max_diffs) break;
          DiffRecord record;
          record.field = field.name;
          record.element_index = raw.value_index;  // field-local already
          record.value_index =
              (field.data_offset + raw.value_index * vsize) / vsize;
          record.value_a = raw.value_a;
          record.value_b = raw.value_b;
          report.diffs.push_back(std::move(record));
        }
      }
    }

    report.fields.push_back(std::move(field_report));
  }

  report.total_seconds = total.seconds();
  return report;
}

}  // namespace repro::cmp
