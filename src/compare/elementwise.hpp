// Element-wise error-bounded comparison kernel.
//
// The innermost loop of both the Direct baseline and stage 2 of our method:
// given two buffers holding the same region from two runs, count (and
// optionally locate) values with |a - b| > eps. Parallelized over the
// executor like every other bulk kernel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "merkle/tree.hpp"
#include "par/exec.hpp"

namespace repro::cmp {

struct ElementDiff {
  std::uint64_t value_index = 0;  ///< global index within the data section
  double value_a = 0;
  double value_b = 0;
};

struct ElementwiseResult {
  std::uint64_t values_compared = 0;
  std::uint64_t values_exceeding = 0;
  /// Severity statistics, populated only when ElementwiseOptions::
  /// collect_stats is set and the kind is a float type. NaN pairs are
  /// excluded (their "difference" has no magnitude). sum_sq_ref sums run A's
  /// squares — the denominator of the relative L2 error
  /// sqrt(sum_sq_diff / sum_sq_ref) forensics tools report per field.
  double max_abs_diff = 0;
  double sum_sq_diff = 0;
  double sum_sq_ref = 0;
};

struct ElementwiseOptions {
  par::Exec exec = par::Exec::parallel();
  /// Collect per-value diff records (capped at max_diffs); counting alone
  /// is cheaper and is what the throughput benches use.
  bool collect_diffs = false;
  std::size_t max_diffs = 1024;
  /// Accumulate max |a-b| and the squared sums above. Forces a scalar pass
  /// over every block (not just flagged ones), so divergence-forensics
  /// callers opt in; the hot compare path leaves it off.
  bool collect_stats = false;
  /// Values per dynamically claimed work unit (0 = auto). Stage-2 worklists
  /// skew per-block cost, so workers claim grains from a shared counter
  /// instead of receiving one static slice each. See docs/PERF.md.
  std::uint64_t dynamic_grain = 0;
};

/// Compare two equal-length byte regions holding `kind`-typed values with
/// absolute bound `eps`. `base_value_index` offsets the reported indices so
/// callers can map chunk-local hits back to checkpoint positions. Appends
/// to `diffs` when collecting. For ValueKind::kBytes, "exceeding" means
/// bitwise-unequal bytes and eps is ignored (and collect_stats reports
/// nothing — byte payloads have no numeric severity).
///
/// Collection is deterministic regardless of the dynamic schedule: when
/// `diffs` grows past the cap, the max_diffs records with the *smallest*
/// value_index are kept, so repeated runs agree on the sample (callers
/// sort-and-truncate once more at the end; see compare_pair).
ElementwiseResult compare_region(std::span<const std::uint8_t> run_a,
                                 std::span<const std::uint8_t> run_b,
                                 merkle::ValueKind kind, double eps,
                                 std::uint64_t base_value_index,
                                 const ElementwiseOptions& options,
                                 std::vector<ElementDiff>* diffs);

}  // namespace repro::cmp
