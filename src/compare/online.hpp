// Online checkpoint comparison (the paper's first future-work item,
// Section 5).
//
// The offline pipeline reads *both* runs' flagged chunks back from the PFS.
// When the comparison runs inside the application — "is this run still
// reproducing the reference run?" — the live checkpoint bytes are already
// resident, so only the *reference* run's data ever needs to be read, and
// only for chunks the Merkle stage could not prune. The live run's tree is
// built in memory and never touches storage unless the caller also captures
// normally.
//
// Typical use inside a simulation loop (see examples/online_monitor.cpp):
//
//   cmp::OnlineComparator monitor(catalog, "reference-run", options);
//   ... at each capture iteration ...
//   auto report = monitor.check(writer);   // writer holds live bytes
//   if (!report.value().identical_within_bound()) { react early! }
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/history.hpp"
#include "common/status.hpp"
#include "compare/report.hpp"
#include "io/backend.hpp"
#include "io/read_planner.hpp"
#include "merkle/compare.hpp"
#include "merkle/tree.hpp"
#include "par/exec.hpp"

namespace repro::cmp {

struct OnlineOptions {
  double error_bound = 1e-6;
  /// Tree parameters for the live data; must match how the reference
  /// metadata was captured (checked against the loaded sidecar).
  merkle::TreeParams tree;
  io::BackendKind backend = io::BackendKind::kUring;
  bool backend_fallback = true;
  io::BackendOptions backend_options;
  io::PlanOptions plan;
  merkle::TreeCompareOptions tree_compare;
  par::Exec exec = par::Exec::parallel();
  bool collect_diffs = false;
  std::size_t max_diffs = 1024;
};

/// Compares a running application's checkpoints against a reference run's
/// stored history, iteration by iteration.
class OnlineComparator {
 public:
  OnlineComparator(ckpt::HistoryCatalog catalog, std::string reference_run,
                   OnlineOptions options)
      : catalog_(std::move(catalog)),
        reference_run_(std::move(reference_run)),
        options_(std::move(options)) {}

  /// Compare the live checkpoint in `writer` (its info() names the
  /// iteration and rank) against the reference run's checkpoint for the
  /// same (iteration, rank). Reads reference metadata + only the flagged
  /// reference chunks; the live side stays in memory.
  repro::Result<CompareReport> check(const ckpt::CheckpointWriter& writer);

  /// Earliest divergent iteration observed so far (across ranks checked
  /// through this comparator).
  [[nodiscard]] std::optional<std::uint64_t> first_divergent_iteration()
      const noexcept {
    return first_divergence_;
  }

  /// (iteration, rank, report) for every check() so far.
  [[nodiscard]] const std::vector<
      std::tuple<std::uint64_t, std::uint32_t, CompareReport>>&
  history() const noexcept {
    return history_;
  }

  /// Total reference bytes read across all checks — the online mode's I/O
  /// bill (the offline pipeline would have paid roughly twice this plus the
  /// live run's own reads).
  [[nodiscard]] std::uint64_t reference_bytes_read() const noexcept {
    return reference_bytes_read_;
  }

 private:
  ckpt::HistoryCatalog catalog_;
  std::string reference_run_;
  OnlineOptions options_;
  std::optional<std::uint64_t> first_divergence_;
  std::vector<std::tuple<std::uint64_t, std::uint32_t, CompareReport>>
      history_;
  std::uint64_t reference_bytes_read_ = 0;
};

}  // namespace repro::cmp
