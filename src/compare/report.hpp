// Result structures reported by the comparison runtimes (our method, Direct
// and AllClose share the summary shape so benches can tabulate them
// uniformly).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.hpp"
#include "compare/elementwise.hpp"

namespace repro::cmp {

/// Phase names charged into CompareReport::timers — the five timers of the
/// paper's Figure 6 breakdown.
inline constexpr const char* kPhaseSetup = "setup";
inline constexpr const char* kPhaseRead = "read";
inline constexpr const char* kPhaseDeserialize = "deserialization";
inline constexpr const char* kPhaseCompareTree = "compare_tree";
inline constexpr const char* kPhaseCompareDirect = "compare_direct";

/// A located difference, mapped back to the checkpoint field it lives in.
struct DiffRecord {
  std::string field;               ///< e.g. "VX"
  std::uint64_t element_index = 0; ///< index within the field
  std::uint64_t value_index = 0;   ///< index within the whole data section
  double value_a = 0;
  double value_b = 0;
};

/// Per-field stage-2 outcome — the unit of the divergence ledger
/// (src/diverge/). Populated when CompareOptions::collect_field_stats is
/// set; severity statistics cover only the streamed (flagged) regions, which
/// is exact for "which values exceed ε" but makes rel_l2_error a
/// flagged-region quantity, not a whole-field norm (docs/FORMATS.md).
struct FieldDivergence {
  std::string field;
  std::uint64_t chunk_begin = 0;     ///< first chunk overlapping this field
  std::uint64_t chunks_total = 0;    ///< chunks overlapping this field
  std::uint64_t chunks_flagged = 0;  ///< of those, flagged by stage 1
  std::uint64_t values_compared = 0;
  std::uint64_t values_exceeding = 0;
  double max_abs_diff = 0;
  /// sqrt(sum (a-b)^2 / sum a^2) over compared values; 0 when the reference
  /// energy is zero.
  double rel_l2_error = 0;
  /// Flagged chunks overlapping this field, run-length encoded as inclusive
  /// [first, last] runs in global chunk space — feeds the timeline heatmap
  /// without storing one entry per chunk.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flagged_ranges;

  [[nodiscard]] bool diverged() const noexcept {
    return values_exceeding > 0;
  }
};

struct CompareReport {
  /// Size of one run's compared data section.
  std::uint64_t data_bytes = 0;

  // Stage 1 (metadata) — zero for the baselines.
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_flagged = 0;
  std::uint64_t metadata_bytes_read = 0;
  std::uint64_t tree_nodes_visited = 0;

  // Stage 2 (verification).
  std::uint64_t values_compared = 0;
  std::uint64_t values_exceeding = 0;
  /// Bulk checkpoint bytes streamed from *each* file (payload + coalescing
  /// waste) — the quantity Figure 7a normalizes by data_bytes.
  std::uint64_t bytes_read_per_file = 0;

  // I/O recovery activity during stage 2, summed over both runs' backends
  // and the streamer. Zero across the board on a healthy filesystem; any
  // nonzero value means the comparison recovered from transient faults.
  std::uint64_t io_retries = 0;      ///< syscall-level + whole-batch retries
  std::uint64_t io_short_reads = 0;  ///< reads continued after a short count
  std::uint64_t io_interrupts = 0;   ///< EINTR/EAGAIN absorbed
  std::uint64_t io_fallbacks = 0;    ///< backend degradations (uring→threads)

  [[nodiscard]] bool io_recovery_active() const noexcept {
    return io_retries + io_short_reads + io_interrupts + io_fallbacks > 0;
  }

  std::vector<DiffRecord> diffs;  ///< capped sample when collection is on

  /// Stage-1 candidate chunk indices (sorted ascending). Always populated —
  /// it is the list stage 2 streamed, handed to the report at zero cost so
  /// forensics tools can render chunk-space mismatch maps without
  /// re-walking the trees (merkle::flagged_bitmap densifies it).
  std::vector<std::uint64_t> flagged_chunks;

  /// Per-field breakdown; empty unless CompareOptions::collect_field_stats.
  std::vector<FieldDivergence> field_divergences;

  TimerSet timers;
  double total_seconds = 0;

  [[nodiscard]] bool identical_within_bound() const noexcept {
    return values_exceeding == 0;
  }

  /// Paper throughput metric: compared data (both runs) over total runtime.
  [[nodiscard]] double throughput_bytes_per_second() const noexcept {
    return total_seconds > 0
               ? 2.0 * static_cast<double>(data_bytes) / total_seconds
               : 0.0;
  }

  /// Fraction of the checkpoint marked potentially changed (Figure 7a).
  [[nodiscard]] double fraction_data_flagged() const noexcept {
    return chunks_total > 0 ? static_cast<double>(chunks_flagged) /
                                  static_cast<double>(chunks_total)
                            : 0.0;
  }
};

}  // namespace repro::cmp
