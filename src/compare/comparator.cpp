#include "compare/comparator.hpp"

#include <algorithm>
#include <cmath>

#include "common/fs.hpp"
#include "common/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace repro::cmp {

namespace {

struct PairMetrics {
  telemetry::Counter& pairs;
  telemetry::Counter& chunks_total;
  telemetry::Counter& chunks_flagged;
  telemetry::Counter& values_compared;
  telemetry::Counter& values_exceeding;
  telemetry::Histogram& pair_seconds;

  static PairMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static PairMetrics* metrics = new PairMetrics{
        registry.counter("compare.pairs"),
        registry.counter("compare.chunks.total"),
        registry.counter("compare.chunks.flagged"),
        registry.counter("compare.values.compared"),
        registry.counter("compare.values.exceeding"),
        registry.histogram("compare.pair.seconds",
                           telemetry::latency_buckets_seconds()),
    };
    return *metrics;
  }
};

/// All-fields-same-kind detection: the tree interprets the data section as
/// one typed array, so mixed-kind checkpoints degrade to bitwise hashing.
merkle::ValueKind dominant_kind(const ckpt::CheckpointInfo& info) {
  if (info.fields.empty()) return merkle::ValueKind::kBytes;
  const merkle::ValueKind kind = info.fields.front().kind;
  for (const auto& field : info.fields) {
    if (field.kind != kind) return merkle::ValueKind::kBytes;
  }
  return kind;
}

/// Open (preferably map) the sidecar metadata, or build and persist it when
/// permitted. Returns the view + its owning pin.
repro::Result<PinnedTree> load_or_build_tree(
    const ckpt::CheckpointReader& reader,
    const std::filesystem::path& metadata_path, const CompareOptions& options,
    TimerSet& timers, std::uint64_t* metadata_bytes_read) {
  if (std::filesystem::exists(metadata_path)) {
    // Flat v2 sidecars map straight into place — the deserialize phase
    // vanishes (the Figure-6 breakdown shows it as ~0). Legacy v1 sidecars
    // still decode inside open(); that one-time conversion is charged to
    // the read phase it replaces.
    merkle::MappedBundle opened;
    {
      PhaseTimer timer(timers, kPhaseRead);
      REPRO_ASSIGN_OR_RETURN(opened, merkle::MappedBundle::open(metadata_path));
    }
    *metadata_bytes_read += opened.resident_bytes();
    auto pin = std::make_shared<const merkle::MappedBundle>(std::move(opened));
    PhaseTimer timer(timers, kPhaseDeserialize);
    REPRO_ASSIGN_OR_RETURN(const merkle::TreeView view, pin->sole_tree());
    return PinnedTree{view, pin};
  }

  if (!options.build_metadata_if_missing) {
    return repro::not_found("no merkle metadata at " + metadata_path.string());
  }

  // Offline mode: derive the tree now. Charged to the read phase since it
  // replaces the metadata read with a bulk read + hash.
  PhaseTimer timer(timers, kPhaseRead);
  merkle::TreeParams params = options.tree;
  params.hash.error_bound = options.error_bound;
  params.value_kind = dominant_kind(reader.info());
  REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> data,
                         reader.read_data());
  merkle::TreeBuilder builder(params, options.exec);
  REPRO_ASSIGN_OR_RETURN(merkle::MerkleTree built, builder.build(data));
  auto pin = std::make_shared<const merkle::MerkleTree>(std::move(built));
  const repro::Status saved = merkle::save_flat(*pin, metadata_path);
  if (!saved.is_ok()) {
    REPRO_LOG_WARN << "could not persist metadata sidecar: "
                   << saved.to_string();
  }
  return PinnedTree{merkle::TreeView(*pin), pin};
}

/// Running per-field severity totals while stage 2 streams; folded into
/// CompareReport::field_divergences once the last slice is consumed.
struct FieldAccum {
  std::uint64_t values_compared = 0;
  std::uint64_t values_exceeding = 0;
  double max_abs_diff = 0;
  double sum_sq_diff = 0;
  double sum_sq_ref = 0;
};

repro::Result<std::unique_ptr<io::IoBackend>> open_stage2_backend(
    const std::filesystem::path& path, const CompareOptions& options,
    std::uint64_t* fallbacks) {
  auto result =
      io::open_backend(path, options.backend, options.backend_options);
  if (!result.is_ok() && options.backend_fallback &&
      result.status().code() == repro::StatusCode::kUnsupported) {
    REPRO_LOG_WARN << io::backend_name(options.backend)
                   << " backend unavailable ("
                   << result.status().message()
                   << "); falling back to the threads backend for "
                   << path.string();
    ++*fallbacks;
    return io::open_backend(path, io::BackendKind::kThreadAsync,
                            options.backend_options);
  }
  return result;
}

}  // namespace

repro::Result<CompareReport> compare_pair(const ckpt::CheckpointPair& pair,
                                          const CompareOptions& options) {
  return compare_pair(pair, options, PreloadedMetadata{});
}

repro::Result<CompareReport> compare_pair(const ckpt::CheckpointPair& pair,
                                          const CompareOptions& options,
                                          const PreloadedMetadata& preloaded) {
  Stopwatch total;
  CompareReport report;
  telemetry::TraceSpan pair_span("compare.pair");
  pair_span.arg("file_a", pair.run_a.checkpoint_path.filename().string())
      .arg("file_b", pair.run_b.checkpoint_path.filename().string());

  if (options.evict_cache) {
    for (const auto& path :
         {pair.run_a.checkpoint_path, pair.run_b.checkpoint_path,
          pair.run_a.metadata_path, pair.run_b.metadata_path}) {
      if (std::filesystem::exists(path)) {
        const repro::Status status = repro::evict_page_cache(path);
        if (!status.is_ok()) {
          REPRO_LOG_WARN << "cache eviction failed: " << status.to_string();
        }
      }
    }
  }

  // --- setup: open checkpoint headers and stage-2 I/O backends.
  std::optional<ckpt::CheckpointReader> reader_a;
  std::optional<ckpt::CheckpointReader> reader_b;
  std::unique_ptr<io::IoBackend> backend_a;
  std::unique_ptr<io::IoBackend> backend_b;
  {
    telemetry::TraceSpan span("compare.setup");
    PhaseTimer timer(report.timers, kPhaseSetup);
    REPRO_ASSIGN_OR_RETURN(
        auto opened_a, ckpt::CheckpointReader::open(pair.run_a.checkpoint_path));
    REPRO_ASSIGN_OR_RETURN(
        auto opened_b, ckpt::CheckpointReader::open(pair.run_b.checkpoint_path));
    reader_a.emplace(std::move(opened_a));
    reader_b.emplace(std::move(opened_b));
    if (reader_a->data_bytes() != reader_b->data_bytes()) {
      return repro::failed_precondition(
          "checkpoints cover different data sizes");
    }
    REPRO_ASSIGN_OR_RETURN(
        backend_a, open_stage2_backend(pair.run_a.checkpoint_path, options,
                                       &report.io_fallbacks));
    REPRO_ASSIGN_OR_RETURN(
        backend_b, open_stage2_backend(pair.run_b.checkpoint_path, options,
                                       &report.io_fallbacks));
  }
  report.data_bytes = reader_a->data_bytes();

  // --- read + deserialization: the Merkle metadata. A preloaded side skips
  // both phases — no sidecar read, no decode — which is what keeps warm
  // service queries at metadata_bytes_read == 0.
  telemetry::TraceSpan metadata_span("compare.load_metadata");
  auto obtain_tree = [&](const PinnedTree& pinned,
                         const ckpt::CheckpointReader& reader,
                         const std::filesystem::path& metadata_path)
      -> repro::Result<PinnedTree> {
    if (pinned.valid()) {
      if (pinned.view.data_bytes() != reader.data_bytes()) {
        return repro::failed_precondition(
            "preloaded metadata covers " +
            std::to_string(pinned.view.data_bytes()) +
            " bytes but checkpoint " + reader.path().string() + " has " +
            std::to_string(reader.data_bytes()));
      }
      return pinned;
    }
    return load_or_build_tree(reader, metadata_path, options, report.timers,
                              &report.metadata_bytes_read);
  };
  REPRO_ASSIGN_OR_RETURN(
      const PinnedTree pinned_a,
      obtain_tree(preloaded.tree_a, *reader_a, pair.run_a.metadata_path));
  REPRO_ASSIGN_OR_RETURN(
      const PinnedTree pinned_b,
      obtain_tree(preloaded.tree_b, *reader_b, pair.run_b.metadata_path));
  const merkle::TreeView& tree_a = pinned_a.view;
  const merkle::TreeView& tree_b = pinned_b.view;
  metadata_span.arg("bytes", report.metadata_bytes_read);
  metadata_span.end();

  if (tree_a.params().hash.error_bound != options.error_bound) {
    return repro::failed_precondition(
        "metadata was captured with error bound " +
        std::to_string(tree_a.params().hash.error_bound) +
        " but the comparison requests " + std::to_string(options.error_bound) +
        "; re-capture or rebuild metadata");
  }

  // --- compare_tree: stage 1, pruned BFS.
  std::vector<std::uint64_t> candidates;
  {
    telemetry::TraceSpan span("compare.tree");
    PhaseTimer timer(report.timers, kPhaseCompareTree);
    merkle::TreeCompareOptions tree_options = options.tree_compare;
    tree_options.exec = options.exec;
    merkle::TreeCompareStats stats;
    REPRO_ASSIGN_OR_RETURN(candidates,
                           merkle::compare_trees(tree_a, tree_b, tree_options,
                                                 &stats));
    report.tree_nodes_visited = stats.nodes_visited;
  }
  report.chunks_total = tree_a.num_chunks();
  report.chunks_flagged = candidates.size();

  // --- compare_direct: stage 2, stream candidates + verify.
  const std::vector<ckpt::FieldInfo>& fields = reader_a->info().fields;
  std::vector<FieldAccum> field_accum(
      options.collect_field_stats ? fields.size() : 0);
  if (!candidates.empty()) {
    telemetry::TraceSpan span("compare.stage2");
    span.arg("candidates", static_cast<std::uint64_t>(candidates.size()));
    PhaseTimer timer(report.timers, kPhaseCompareDirect);

    io::StreamOptions stream_options = options.stream;
    stream_options.base_offset_a = reader_a->data_offset();
    stream_options.base_offset_b = reader_b->data_offset();

    io::PairedChunkStreamer streamer(
        *backend_a, *backend_b, tree_a.params().chunk_bytes,
        tree_a.data_bytes(), candidates, stream_options);

    const merkle::ValueKind kind = tree_a.params().value_kind;
    const std::uint32_t vsize = merkle::value_size(kind);
    ElementwiseOptions element_options;
    element_options.exec = options.exec;
    element_options.collect_diffs = options.collect_diffs;
    element_options.max_diffs = options.max_diffs;
    element_options.collect_stats = options.collect_field_stats;
    element_options.dynamic_grain = options.dynamic_grain;

    std::vector<ElementDiff> raw_diffs;
    while (io::ChunkSlice* slice = streamer.next()) {
      for (const auto& placement : slice->placements) {
        const std::uint64_t begin_byte =
            placement.chunk * tree_a.params().chunk_bytes;

        // Compare one byte range of the placement, attributing its outcome
        // to `accum` when per-field stats are on.
        auto compare_segment = [&](std::uint64_t seg_byte,
                                   std::uint64_t seg_len,
                                   FieldAccum* accum) {
          const std::uint64_t buffer_offset =
              placement.buffer_offset + (seg_byte - begin_byte);
          const auto result = compare_region(
              std::span<const std::uint8_t>(
                  slice->data_a.data() + buffer_offset, seg_len),
              std::span<const std::uint8_t>(
                  slice->data_b.data() + buffer_offset, seg_len),
              kind, options.error_bound, seg_byte / vsize, element_options,
              options.collect_diffs ? &raw_diffs : nullptr);
          report.values_compared += result.values_compared;
          report.values_exceeding += result.values_exceeding;
          if (accum != nullptr) {
            accum->values_compared += result.values_compared;
            accum->values_exceeding += result.values_exceeding;
            accum->max_abs_diff =
                std::max(accum->max_abs_diff, result.max_abs_diff);
            accum->sum_sq_diff += result.sum_sq_diff;
            accum->sum_sq_ref += result.sum_sq_ref;
          }
        };

        if (!options.collect_field_stats) {
          compare_segment(begin_byte, placement.length, nullptr);
          continue;
        }

        // Field attribution: split the placement (one chunk's bytes) at
        // field boundaries. Chunks rarely straddle more than one boundary,
        // so the split costs a couple of extra compare_region calls at most.
        std::uint64_t off = begin_byte;
        const std::uint64_t end_byte = begin_byte + placement.length;
        while (off < end_byte) {
          const ckpt::FieldInfo* field = reader_a->info().field_at(off);
          std::uint64_t seg_end = end_byte;
          FieldAccum* accum = nullptr;
          if (field != nullptr) {
            seg_end = std::min(end_byte,
                               field->data_offset + field->byte_size());
            accum = &field_accum[static_cast<std::size_t>(
                field - fields.data())];
          } else {
            // Padding between fields: attribute to no field and stop at the
            // next field start (fields are laid out in ascending order).
            for (const auto& next : fields) {
              if (next.data_offset > off) {
                seg_end = std::min(seg_end, next.data_offset);
                break;
              }
            }
          }
          if (seg_end <= off) break;  // malformed field table; stop splitting
          compare_segment(off, seg_end - off, accum);
          off = seg_end;
        }
      }
    }
    REPRO_RETURN_IF_ERROR(streamer.status());
    report.bytes_read_per_file = streamer.bytes_read_per_file();

    const io::IoStats io_stats = backend_a->stats() + backend_b->stats();
    report.io_retries += io_stats.retries + streamer.batch_retries();
    report.io_short_reads += io_stats.short_reads;
    report.io_interrupts += io_stats.interrupts;
    report.io_fallbacks += io_stats.fallbacks;

    // Map raw value indices back onto checkpoint fields. Sort-and-truncate
    // first so the reported sample is the max_diffs smallest indices in
    // ascending order — deterministic under the dynamic schedule.
    if (options.collect_diffs) {
      std::sort(raw_diffs.begin(), raw_diffs.end(),
                [](const ElementDiff& a, const ElementDiff& b) {
                  return a.value_index < b.value_index;
                });
      if (raw_diffs.size() > options.max_diffs) {
        raw_diffs.resize(options.max_diffs);
      }
      report.diffs.reserve(raw_diffs.size());
      for (const auto& raw : raw_diffs) {
        DiffRecord record;
        record.value_index = raw.value_index;
        record.value_a = raw.value_a;
        record.value_b = raw.value_b;
        const std::uint64_t byte_offset = raw.value_index * vsize;
        if (const auto* field = reader_a->info().field_at(byte_offset)) {
          record.field = field->name;
          record.element_index =
              (byte_offset - field->data_offset) / vsize;
        }
        report.diffs.push_back(std::move(record));
      }
    }
  }
  report.flagged_chunks = std::move(candidates);

  // Fold the per-field accumulators (and chunk-space geometry) into the
  // report. Fields with no flagged chunks still get an entry: the timeline
  // renders "clean" rows, and first-divergence aggregation needs the zeros.
  if (options.collect_field_stats) {
    const std::uint64_t chunk_bytes = tree_a.params().chunk_bytes;
    report.field_divergences.reserve(fields.size());
    for (std::size_t index = 0; index < fields.size(); ++index) {
      const ckpt::FieldInfo& field = fields[index];
      FieldDivergence divergence;
      divergence.field = field.name;
      if (field.byte_size() > 0 && chunk_bytes > 0) {
        const std::uint64_t first_chunk = field.data_offset / chunk_bytes;
        const std::uint64_t last_chunk =
            (field.data_offset + field.byte_size() - 1) / chunk_bytes;
        divergence.chunk_begin = first_chunk;
        divergence.chunks_total = last_chunk - first_chunk + 1;
        for (const std::uint64_t chunk : report.flagged_chunks) {
          if (chunk < first_chunk || chunk > last_chunk) continue;
          ++divergence.chunks_flagged;
          if (!divergence.flagged_ranges.empty() &&
              divergence.flagged_ranges.back().second + 1 == chunk) {
            divergence.flagged_ranges.back().second = chunk;
          } else {
            divergence.flagged_ranges.emplace_back(chunk, chunk);
          }
        }
      }
      const FieldAccum& accum = field_accum[index];
      divergence.values_compared = accum.values_compared;
      divergence.values_exceeding = accum.values_exceeding;
      divergence.max_abs_diff = accum.max_abs_diff;
      divergence.rel_l2_error =
          accum.sum_sq_ref > 0
              ? std::sqrt(accum.sum_sq_diff / accum.sum_sq_ref)
              : 0.0;
      report.field_divergences.push_back(std::move(divergence));
    }
  }

  report.total_seconds = total.seconds();
  PairMetrics& metrics = PairMetrics::get();
  metrics.pairs.increment();
  metrics.chunks_total.add(report.chunks_total);
  metrics.chunks_flagged.add(report.chunks_flagged);
  metrics.values_compared.add(report.values_compared);
  metrics.values_exceeding.add(report.values_exceeding);
  metrics.pair_seconds.record(report.total_seconds);
  pair_span.arg("chunks_flagged", report.chunks_flagged)
      .arg("values_exceeding", report.values_exceeding);
  return report;
}

repro::Result<CompareReport> compare_files(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b,
    const CompareOptions& options) {
  // Sidecar lookup: "<file>.ckpt.rmrk" (bare-file convention) or
  // "<file>.rmrk" (catalog convention, extension replaced).
  auto sidecar_for = [](const std::filesystem::path& checkpoint) {
    std::filesystem::path appended = checkpoint.string() + ".rmrk";
    if (std::filesystem::exists(appended)) return appended;
    std::filesystem::path replaced = checkpoint;
    replaced.replace_extension(".rmrk");
    if (std::filesystem::exists(replaced)) return replaced;
    return appended;  // default target when neither exists yet
  };
  ckpt::CheckpointPair pair;
  pair.run_a.checkpoint_path = checkpoint_a;
  pair.run_a.metadata_path = sidecar_for(checkpoint_a);
  pair.run_b.checkpoint_path = checkpoint_b;
  pair.run_b.metadata_path = sidecar_for(checkpoint_b);
  return compare_pair(pair, options);
}

repro::Result<HistoryReport> compare_histories(
    const ckpt::HistoryCatalog& catalog, const std::string& run_a,
    const std::string& run_b, const HistoryOptions& options) {
  Stopwatch total;
  HistoryReport history;
  std::vector<ckpt::CheckpointPair> pairs;
  if (options.allow_ragged) {
    REPRO_ASSIGN_OR_RETURN(ckpt::PairingReport pairing,
                           catalog.pair_runs_lenient(run_a, run_b));
    pairs = std::move(pairing.pairs);
    history.only_in_a = std::move(pairing.only_in_a);
    history.only_in_b = std::move(pairing.only_in_b);
  } else {
    REPRO_ASSIGN_OR_RETURN(pairs, catalog.pair_runs(run_a, run_b));
  }
  for (const auto& pair : pairs) {
    REPRO_ASSIGN_OR_RETURN(CompareReport report,
                           compare_pair(pair, options.pair_options));
    const bool diverged = !report.identical_within_bound();
    if (diverged && !history.first_divergent_iteration.has_value()) {
      history.first_divergent_iteration = pair.run_a.iteration;
      history.first_divergent_rank = pair.run_a.rank;
    }
    history.pairs.emplace_back(pair, std::move(report));
    if (diverged && options.stop_at_first_divergence) break;
  }
  history.total_seconds = total.seconds();
  return history;
}

}  // namespace repro::cmp
