// The headline runtime: Merkle-pruned, error-bounded, streamed checkpoint
// comparison (Sections 2.2-2.5).
//
// compare_pair() runs the full two-stage pipeline on one (iteration, rank)
// checkpoint pair:
//   setup            open checkpoints + I/O backends
//   read             load both runs' Merkle metadata (or build it when the
//                    capture ran without metadata)
//   deserialization  decode the trees
//   compare_tree     pruned BFS -> candidate chunk list
//   compare_direct   stream candidate chunks from both files, element-wise
//                    verify within the error bound
// The five phases are charged into CompareReport::timers exactly as in the
// paper's Figure 6 breakdown.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>

#include "ckpt/format.hpp"
#include "ckpt/history.hpp"
#include "common/status.hpp"
#include "compare/report.hpp"
#include "io/backend.hpp"
#include "io/stream.hpp"
#include "merkle/compare.hpp"
#include "merkle/tree.hpp"
#include "par/exec.hpp"

namespace repro::cmp {

struct CompareOptions {
  /// Error bound applied by stage 2's element-wise verification. Stage 1
  /// uses the bound baked into the metadata at capture time; mixing bounds
  /// is rejected (the hash guarantee only covers its own bound).
  double error_bound = 1e-6;

  /// Backend for stage 2's scattered reads.
  io::BackendKind backend = io::BackendKind::kUring;
  /// Fall back (uring -> threads) instead of failing when unavailable.
  bool backend_fallback = true;
  io::BackendOptions backend_options;

  io::StreamOptions stream;
  merkle::TreeCompareOptions tree_compare;
  par::Exec exec = par::Exec::parallel();

  /// When a checkpoint has no .rmrk sidecar, build the tree on the fly with
  /// these parameters (offline mode); error_bound overrides tree.hash.
  merkle::TreeParams tree;
  bool build_metadata_if_missing = true;

  /// Collect located diffs (field + element index) up to max_diffs. The
  /// sample is deterministic: the max_diffs smallest value indices, in
  /// ascending order, independent of the dynamic schedule.
  bool collect_diffs = false;
  std::size_t max_diffs = 1024;

  /// Split stage 2 at field boundaries and fill CompareReport::
  /// field_divergences (per-field counts, max |a-b|, relative L2 over the
  /// flagged regions). Costs a scalar pass over streamed chunks, so the
  /// divergence-forensics paths (--ledger-out, repro-cli timeline) enable
  /// it; plain compare leaves it off.
  bool collect_field_stats = false;

  /// Dynamic-scheduling grain (values per claim) for stage 2's element-wise
  /// verification; 0 = auto. See docs/PERF.md.
  std::uint64_t dynamic_grain = 0;

  /// Drop both files (and metadata) from the page cache first — the
  /// cold-cache protocol the paper enforces with `vmtouch -e`.
  bool evict_cache = false;
};

/// A zero-copy tree view plus whatever owns its backing bytes. The view is
/// what the comparison walks; the type-erased pin (a MappedBundle, a decoded
/// MerkleTree, …) keeps those bytes alive for the duration of the compare
/// even if the supplying cache evicts the entry concurrently.
struct PinnedTree {
  merkle::TreeView view;
  std::shared_ptr<const void> pin;

  [[nodiscard]] bool valid() const noexcept { return view.valid(); }
};

/// Already-resident Merkle metadata supplied by a caller that keeps sidecars
/// mapped (the compare service's sharded cache). A valid side skips the
/// sidecar read + deserialize phases entirely, so a fully preloaded pair
/// reports metadata_bytes_read == 0 — the "warm query touches zero sidecar
/// I/O" guarantee.
struct PreloadedMetadata {
  PinnedTree tree_a;
  PinnedTree tree_b;
};

/// Compare one aligned checkpoint pair (same iteration, same rank).
repro::Result<CompareReport> compare_pair(const ckpt::CheckpointPair& pair,
                                          const CompareOptions& options);

/// As above, but any non-null PreloadedMetadata side is used in place of the
/// on-disk sidecar. Preloaded trees are validated against the checkpoint's
/// data-section size before use.
repro::Result<CompareReport> compare_pair(const ckpt::CheckpointPair& pair,
                                          const CompareOptions& options,
                                          const PreloadedMetadata& preloaded);

/// Convenience overload for bare file paths: metadata sidecars are looked
/// up at `<path>.rmrk` next to each checkpoint.
repro::Result<CompareReport> compare_files(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b, const CompareOptions& options);

/// First-divergence search over two runs' full histories: compares pairs in
/// (iteration, rank) order and reports the earliest iteration at which any
/// rank exceeds the bound — the "identify divergence early in the execution
/// path" use case of the introduction.
struct HistoryReport {
  std::vector<std::pair<ckpt::CheckpointPair, CompareReport>> pairs;
  /// Earliest iteration with a difference; empty if histories agree.
  std::optional<std::uint64_t> first_divergent_iteration;
  std::optional<std::uint32_t> first_divergent_rank;
  /// Checkpoints present in only one run; always empty unless
  /// HistoryOptions::allow_ragged paired the runs leniently.
  std::vector<ckpt::CheckpointRef> only_in_a;
  std::vector<ckpt::CheckpointRef> only_in_b;
  double total_seconds = 0;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& [pair, report] : pairs) total += report.data_bytes;
    return total;
  }
};

struct HistoryOptions {
  CompareOptions pair_options;
  /// Stop at the first divergent iteration instead of comparing the whole
  /// history (early-exit mode).
  bool stop_at_first_divergence = false;
  /// Compare the (iteration, rank) intersection of ragged histories and
  /// report one-sided checkpoints in HistoryReport::only_in_a/_b, instead
  /// of failing when the runs' capture sets differ (crashed run, partial
  /// copy). Default keeps the strict aligned-schedule contract.
  bool allow_ragged = false;
};

repro::Result<HistoryReport> compare_histories(
    const ckpt::HistoryCatalog& catalog, const std::string& run_a,
    const std::string& run_b, const HistoryOptions& options);

}  // namespace repro::cmp
