// Per-field error-bounded comparison.
//
// compare_pair() applies one ε to a whole checkpoint. Domain tolerances are
// usually per variable: positions to 1e-6, velocities to 1e-4, potential to
// 1e-3. This extension builds (or loads, sidecar "<ckpt>.rmrb") one Merkle
// tree per field — each at its own bound and chunk size — and runs the
// two-stage comparison field by field, so a loose-tolerance field prunes to
// nothing while a tight one is still verified exactly. Reports keep the
// per-field structure (which field diverged is the scientific question).
#pragma once

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "ckpt/history.hpp"
#include "common/status.hpp"
#include "compare/report.hpp"
#include "io/backend.hpp"
#include "io/read_planner.hpp"
#include "merkle/bundle.hpp"
#include "par/exec.hpp"

namespace repro::cmp {

struct FieldCompareOptions {
  /// Per-field absolute error bounds; fields not listed use default_bound.
  std::map<std::string, double, std::less<>> field_bounds;
  double default_bound = 1e-6;

  std::uint64_t chunk_bytes = 16 * 1024;
  std::uint32_t values_per_block = 4;

  io::BackendKind backend = io::BackendKind::kUring;
  bool backend_fallback = true;
  io::BackendOptions backend_options;
  io::PlanOptions plan;
  par::Exec exec = par::Exec::parallel();

  bool build_metadata_if_missing = true;
  bool collect_diffs = false;
  std::size_t max_diffs = 1024;
};

struct FieldReport {
  std::string field;
  double error_bound = 0;
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_flagged = 0;
  std::uint64_t values_compared = 0;
  std::uint64_t values_exceeding = 0;
  std::uint64_t bytes_read_per_file = 0;
};

struct FieldsReport {
  std::vector<FieldReport> fields;
  std::vector<DiffRecord> diffs;  ///< capped sample across all fields
  double total_seconds = 0;

  [[nodiscard]] bool identical_within_bounds() const noexcept {
    for (const auto& field : fields) {
      if (field.values_exceeding > 0) return false;
    }
    return true;
  }

  [[nodiscard]] std::uint64_t total_exceeding() const noexcept {
    std::uint64_t total = 0;
    for (const auto& field : fields) total += field.values_exceeding;
    return total;
  }
};

/// Compare two checkpoints field by field under per-field bounds. Metadata
/// bundles are looked up at "<ckpt>.rmrb" (built and persisted when absent
/// and build_metadata_if_missing is set).
repro::Result<FieldsReport> compare_fields(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b,
    const FieldCompareOptions& options);

/// Build the per-field metadata bundle for one checkpoint (capture-time
/// path; the offline path calls this implicitly).
repro::Result<merkle::TreeBundle> build_field_bundle(
    const ckpt::CheckpointInfo& info, std::span<const std::uint8_t> data,
    const FieldCompareOptions& options);

}  // namespace repro::cmp
