#include "compare/elementwise.hpp"

#include <atomic>
#include <cmath>
#include <mutex>

#include "hash/kernels.hpp"

namespace repro::cmp {

namespace {

template <typename Float>
ElementwiseResult compare_typed(std::span<const std::uint8_t> run_a,
                                std::span<const std::uint8_t> run_b,
                                double eps, std::uint64_t base_value_index,
                                const ElementwiseOptions& options,
                                std::vector<ElementDiff>* diffs) {
  const auto* values_a = reinterpret_cast<const Float*>(run_a.data());
  const auto* values_b = reinterpret_cast<const Float*>(run_b.data());
  const std::uint64_t count = run_a.size() / sizeof(Float);

  ElementwiseResult result;
  result.values_compared = count;

  // NaN semantics match the quantizer: NaN vs NaN is reproducible, NaN vs
  // finite is a difference. The batched kernel implements the same rule;
  // this scalar copy only runs when locating diffs within a flagged block.
  auto differs = [eps](double a, double b) {
    const bool nan_a = std::isnan(a);
    const bool nan_b = std::isnan(b);
    if (nan_a || nan_b) return nan_a != nan_b;
    return std::abs(a - b) > eps;
  };

  // Both paths: dynamically claimed blocks (chunk worklists skew per-block
  // cost), counted by the batched ε-compare kernel.
  std::atomic<std::uint64_t> exceeding{0};
  if (!options.collect_diffs || diffs == nullptr) {
    options.exec.for_blocks_dynamic(
        0, count, options.dynamic_grain,
        [&](std::uint64_t lo, std::uint64_t hi) {
          exceeding.fetch_add(
              hash::count_diffs(values_a + lo, values_b + lo, hi - lo, eps),
              std::memory_order_relaxed);
        });
    result.values_exceeding = exceeding.load();
    return result;
  }

  std::mutex diff_mu;
  options.exec.for_blocks_dynamic(
      0, count, options.dynamic_grain,
      [&](std::uint64_t lo, std::uint64_t hi) {
        // Count first with the kernel; only blocks with hits pay the scalar
        // locate loop (most blocks of a mostly-reproducible pair are clean).
        const std::uint64_t hits =
            hash::count_diffs(values_a + lo, values_b + lo, hi - lo, eps);
        if (hits == 0) return;
        exceeding.fetch_add(hits, std::memory_order_relaxed);
        std::vector<ElementDiff> local;
        local.reserve(static_cast<std::size_t>(hits));
        for (std::uint64_t i = lo; i < hi; ++i) {
          const auto a = static_cast<double>(values_a[i]);
          const auto b = static_cast<double>(values_b[i]);
          if (!differs(a, b)) continue;
          local.push_back({base_value_index + i, a, b});
        }
        std::lock_guard<std::mutex> lock(diff_mu);
        for (auto& record : local) {
          if (diffs->size() >= options.max_diffs) break;
          diffs->push_back(record);
        }
      });
  result.values_exceeding = exceeding.load();
  return result;
}

}  // namespace

ElementwiseResult compare_region(std::span<const std::uint8_t> run_a,
                                 std::span<const std::uint8_t> run_b,
                                 merkle::ValueKind kind, double eps,
                                 std::uint64_t base_value_index,
                                 const ElementwiseOptions& options,
                                 std::vector<ElementDiff>* diffs) {
  switch (kind) {
    case merkle::ValueKind::kF32:
      return compare_typed<float>(run_a, run_b, eps, base_value_index,
                                  options, diffs);
    case merkle::ValueKind::kF64:
      return compare_typed<double>(run_a, run_b, eps, base_value_index,
                                   options, diffs);
    case merkle::ValueKind::kBytes: {
      ElementwiseResult result;
      const std::uint64_t count = run_a.size();
      result.values_compared = count;
      result.values_exceeding = options.exec.reduce_sum<std::uint64_t>(
          0, count, [&](std::uint64_t i) {
            return run_a[i] != run_b[i] ? std::uint64_t{1} : std::uint64_t{0};
          });
      if (options.collect_diffs && diffs != nullptr) {
        for (std::uint64_t i = 0;
             i < count && diffs->size() < options.max_diffs; ++i) {
          if (run_a[i] != run_b[i]) {
            diffs->push_back({base_value_index + i,
                              static_cast<double>(run_a[i]),
                              static_cast<double>(run_b[i])});
          }
        }
      }
      return result;
    }
  }
  return {};
}

}  // namespace repro::cmp
