#include "compare/elementwise.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "hash/kernels.hpp"

namespace repro::cmp {

namespace {

/// Bounds collection memory without breaking determinism: keeps the
/// max_diffs records with the smallest value_index. Any record discarded
/// here has >= max_diffs smaller-indexed records still present, so it could
/// never survive the caller's final sort-and-truncate — the kept sample is
/// independent of the dynamic schedule's arrival order.
void prune_to_smallest(std::vector<ElementDiff>* diffs,
                       std::size_t max_diffs) {
  if (diffs->size() <= max_diffs) return;
  auto mid = diffs->begin() + static_cast<std::ptrdiff_t>(max_diffs);
  std::nth_element(diffs->begin(), mid, diffs->end(),
                   [](const ElementDiff& a, const ElementDiff& b) {
                     return a.value_index < b.value_index;
                   });
  diffs->resize(max_diffs);
}

template <typename Float>
ElementwiseResult compare_typed(std::span<const std::uint8_t> run_a,
                                std::span<const std::uint8_t> run_b,
                                double eps, std::uint64_t base_value_index,
                                const ElementwiseOptions& options,
                                std::vector<ElementDiff>* diffs) {
  const auto* values_a = reinterpret_cast<const Float*>(run_a.data());
  const auto* values_b = reinterpret_cast<const Float*>(run_b.data());
  const std::uint64_t count = run_a.size() / sizeof(Float);

  ElementwiseResult result;
  result.values_compared = count;

  // NaN semantics match the quantizer: NaN vs NaN is reproducible, NaN vs
  // finite is a difference. The batched kernel implements the same rule;
  // this scalar copy only runs when locating diffs within a flagged block.
  auto differs = [eps](double a, double b) {
    const bool nan_a = std::isnan(a);
    const bool nan_b = std::isnan(b);
    if (nan_a || nan_b) return nan_a != nan_b;
    return std::abs(a - b) > eps;
  };

  // Both paths: dynamically claimed blocks (chunk worklists skew per-block
  // cost), counted by the batched ε-compare kernel.
  std::atomic<std::uint64_t> exceeding{0};
  const bool collecting = options.collect_diffs && diffs != nullptr;
  if (!collecting && !options.collect_stats) {
    options.exec.for_blocks_dynamic(
        0, count, options.dynamic_grain,
        [&](std::uint64_t lo, std::uint64_t hi) {
          exceeding.fetch_add(
              hash::count_diffs(values_a + lo, values_b + lo, hi - lo, eps),
              std::memory_order_relaxed);
        });
    result.values_exceeding = exceeding.load();
    return result;
  }

  std::mutex merge_mu;
  options.exec.for_blocks_dynamic(
      0, count, options.dynamic_grain,
      [&](std::uint64_t lo, std::uint64_t hi) {
        // Count first with the kernel; only blocks with hits (or a stats
        // request, which needs every value) pay the scalar loop — most
        // blocks of a mostly-reproducible pair are clean.
        const std::uint64_t hits =
            hash::count_diffs(values_a + lo, values_b + lo, hi - lo, eps);
        if (hits != 0) exceeding.fetch_add(hits, std::memory_order_relaxed);
        if (hits == 0 && !options.collect_stats) return;

        std::vector<ElementDiff> local;
        if (collecting) local.reserve(static_cast<std::size_t>(hits));
        double local_max = 0;
        double local_sq_diff = 0;
        double local_sq_ref = 0;
        for (std::uint64_t i = lo; i < hi; ++i) {
          const auto a = static_cast<double>(values_a[i]);
          const auto b = static_cast<double>(values_b[i]);
          if (options.collect_stats && !std::isnan(a) && !std::isnan(b)) {
            const double diff = a - b;
            local_max = std::max(local_max, std::abs(diff));
            local_sq_diff += diff * diff;
            local_sq_ref += a * a;
          }
          if (collecting && hits != 0 && differs(a, b)) {
            local.push_back({base_value_index + i, a, b});
          }
        }

        std::lock_guard<std::mutex> lock(merge_mu);
        result.max_abs_diff = std::max(result.max_abs_diff, local_max);
        result.sum_sq_diff += local_sq_diff;
        result.sum_sq_ref += local_sq_ref;
        if (collecting && !local.empty()) {
          diffs->insert(diffs->end(), local.begin(), local.end());
          // Amortized prune: let the vector run to 2x the cap before paying
          // the nth_element; callers sort-and-truncate the remainder.
          if (diffs->size() > 2 * options.max_diffs) {
            prune_to_smallest(diffs, options.max_diffs);
          }
        }
      });
  // Final prune restores the public cap: the amortized in-loop prune only
  // fires past 2x, so the vector may still hold up to 2x max_diffs here.
  if (collecting) prune_to_smallest(diffs, options.max_diffs);
  result.values_exceeding = exceeding.load();
  return result;
}

}  // namespace

ElementwiseResult compare_region(std::span<const std::uint8_t> run_a,
                                 std::span<const std::uint8_t> run_b,
                                 merkle::ValueKind kind, double eps,
                                 std::uint64_t base_value_index,
                                 const ElementwiseOptions& options,
                                 std::vector<ElementDiff>* diffs) {
  switch (kind) {
    case merkle::ValueKind::kF32:
      return compare_typed<float>(run_a, run_b, eps, base_value_index,
                                  options, diffs);
    case merkle::ValueKind::kF64:
      return compare_typed<double>(run_a, run_b, eps, base_value_index,
                                   options, diffs);
    case merkle::ValueKind::kBytes: {
      ElementwiseResult result;
      const std::uint64_t count = run_a.size();
      result.values_compared = count;
      result.values_exceeding = options.exec.reduce_sum<std::uint64_t>(
          0, count, [&](std::uint64_t i) {
            return run_a[i] != run_b[i] ? std::uint64_t{1} : std::uint64_t{0};
          });
      if (options.collect_diffs && diffs != nullptr) {
        for (std::uint64_t i = 0;
             i < count && diffs->size() < options.max_diffs; ++i) {
          if (run_a[i] != run_b[i]) {
            diffs->push_back({base_value_index + i,
                              static_cast<double>(run_a[i]),
                              static_cast<double>(run_b[i])});
          }
        }
      }
      return result;
    }
  }
  return {};
}

}  // namespace repro::cmp
