#include "compare/online.hpp"

#include "common/fs.hpp"
#include "compare/elementwise.hpp"

namespace repro::cmp {

repro::Result<CompareReport> OnlineComparator::check(
    const ckpt::CheckpointWriter& writer) {
  Stopwatch total;
  CompareReport report;
  const ckpt::CheckpointInfo& info = writer.info();
  const std::span<const std::uint8_t> live = writer.data_section();
  report.data_bytes = live.size();

  const ckpt::CheckpointRef reference =
      catalog_.ref(reference_run_, info.iteration, info.rank);

  // --- setup: open the reference checkpoint + its stage-2 backend.
  std::optional<ckpt::CheckpointReader> reference_reader;
  std::unique_ptr<io::IoBackend> backend;
  {
    PhaseTimer timer(report.timers, kPhaseSetup);
    REPRO_ASSIGN_OR_RETURN(
        auto opened, ckpt::CheckpointReader::open(reference.checkpoint_path));
    reference_reader.emplace(std::move(opened));
    if (reference_reader->data_bytes() != live.size()) {
      return repro::failed_precondition(
          "live checkpoint size differs from reference");
    }
    auto backend_result = io::open_backend(
        reference.checkpoint_path, options_.backend, options_.backend_options);
    if (!backend_result.is_ok() && options_.backend_fallback &&
        backend_result.status().code() == repro::StatusCode::kUnsupported) {
      backend_result = io::open_backend(reference.checkpoint_path,
                                        io::BackendKind::kThreadAsync,
                                        options_.backend_options);
    }
    REPRO_ASSIGN_OR_RETURN(backend, std::move(backend_result));
  }

  // --- read + deserialize reference metadata.
  merkle::MerkleTree reference_tree;
  {
    std::vector<std::uint8_t> bytes;
    {
      PhaseTimer timer(report.timers, kPhaseRead);
      REPRO_ASSIGN_OR_RETURN(bytes,
                             repro::read_file(reference.metadata_path));
    }
    report.metadata_bytes_read += bytes.size();
    PhaseTimer timer(report.timers, kPhaseDeserialize);
    REPRO_ASSIGN_OR_RETURN(reference_tree,
                           merkle::MerkleTree::deserialize(bytes));
  }
  if (reference_tree.params().hash.error_bound != options_.error_bound) {
    return repro::failed_precondition(
        "reference metadata error bound differs from online error bound");
  }
  if (reference_tree.params() != options_.tree) {
    return repro::failed_precondition(
        "reference metadata tree parameters differ from online options");
  }

  // --- build the live tree from resident bytes (no storage involved).
  merkle::MerkleTree live_tree;
  {
    PhaseTimer timer(report.timers, kPhaseCompareTree);
    merkle::TreeBuilder builder(options_.tree, options_.exec);
    REPRO_ASSIGN_OR_RETURN(live_tree, builder.build(live));
  }

  // --- stage 1: pruned BFS.
  std::vector<std::uint64_t> candidates;
  {
    PhaseTimer timer(report.timers, kPhaseCompareTree);
    merkle::TreeCompareOptions tree_options = options_.tree_compare;
    tree_options.exec = options_.exec;
    merkle::TreeCompareStats stats;
    REPRO_ASSIGN_OR_RETURN(
        candidates,
        merkle::compare_trees(reference_tree, live_tree, tree_options,
                              &stats));
    report.tree_nodes_visited = stats.nodes_visited;
  }
  report.chunks_total = reference_tree.num_chunks();
  report.chunks_flagged = candidates.size();

  // --- stage 2: read ONLY the reference side of flagged chunks; the live
  //     side is already in memory.
  if (!candidates.empty()) {
    PhaseTimer timer(report.timers, kPhaseCompareDirect);
    const io::ReadPlan plan = io::plan_chunk_reads(
        candidates, options_.tree.chunk_bytes, live.size(), options_.plan);
    std::vector<std::uint8_t> buffer(plan.buffer_bytes);
    std::vector<io::ReadRequest> requests;
    requests.reserve(plan.extents.size());
    for (const auto& extent : plan.extents) {
      requests.push_back(
          {reference_reader->data_offset() + extent.file_offset,
           std::span<std::uint8_t>(buffer.data() + extent.buffer_offset,
                                   extent.length)});
    }
    REPRO_RETURN_IF_ERROR(backend->read_batch(requests));
    report.bytes_read_per_file = plan.buffer_bytes;
    reference_bytes_read_ += plan.buffer_bytes;

    const merkle::ValueKind kind = options_.tree.value_kind;
    const std::uint32_t vsize = merkle::value_size(kind);
    ElementwiseOptions element_options;
    element_options.exec = options_.exec;
    element_options.collect_diffs = options_.collect_diffs;
    element_options.max_diffs = options_.max_diffs;

    std::vector<ElementDiff> raw_diffs;
    for (const auto& placement : plan.placements) {
      const std::uint64_t live_offset =
          placement.chunk * options_.tree.chunk_bytes;
      const auto result = compare_region(
          std::span<const std::uint8_t>(buffer.data() + placement.buffer_offset,
                                        placement.length),
          live.subspan(live_offset, placement.length), kind,
          options_.error_bound, live_offset / vsize, element_options,
          options_.collect_diffs ? &raw_diffs : nullptr);
      report.values_compared += result.values_compared;
      report.values_exceeding += result.values_exceeding;
    }

    if (options_.collect_diffs) {
      for (const auto& raw : raw_diffs) {
        DiffRecord record;
        record.value_index = raw.value_index;
        record.value_a = raw.value_a;
        record.value_b = raw.value_b;
        const std::uint64_t byte_offset = raw.value_index * vsize;
        if (const auto* field = info.field_at(byte_offset)) {
          record.field = field->name;
          record.element_index = (byte_offset - field->data_offset) / vsize;
        }
        report.diffs.push_back(std::move(record));
      }
    }
  }

  report.total_seconds = total.seconds();
  if (!report.identical_within_bound() &&
      (!first_divergence_.has_value() ||
       info.iteration < *first_divergence_)) {
    first_divergence_ = info.iteration;
  }
  history_.emplace_back(info.iteration, info.rank, report);
  return report;
}

}  // namespace repro::cmp
