// The JSON emission helpers formerly defined here moved to common/json.hpp so
// non-telemetry writers (structured logs, the service wire protocol) share one
// copy. This header keeps the telemetry spelling (`telemetry::json_append_*`)
// alive for existing call sites.
#pragma once

#include "common/json.hpp"

namespace repro::telemetry {

using repro::json_append_escaped;
using repro::json_append_number;
using repro::json_append_string;

}  // namespace repro::telemetry
