// Structured run reports: one JSON document per tool invocation merging a
// metrics snapshot, TimerSet phase timings, and tool-specific verdict /
// key-value context. The CLI wires this to `--metrics-out=PATH`; the bench
// harness (bench_json.hpp) embeds the same metrics snapshot next to the
// google-benchmark results so a run's counters travel with its numbers.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "common/timer.hpp"
#include "telemetry/metrics.hpp"

namespace repro::telemetry {

/// Builder for one run's JSON report. Sections are optional; an empty
/// report still serializes as a valid document. Insertion order of info /
/// value entries is preserved so reports diff cleanly run-to-run.
class RunReport {
 public:
  explicit RunReport(std::string tool) : tool_(std::move(tool)) {}

  void set_verdict(std::string verdict) { verdict_ = std::move(verdict); }

  /// Free-form string context ("file_a": "...", "mode": "tree").
  void add_info(std::string_view key, std::string_view value);

  /// Numeric results ("chunks_flagged": 12, "total_seconds": 0.42).
  void add_value(std::string_view key, double value);

  /// Phase timings, emitted in the TimerSet's insertion order.
  void add_timers(const TimerSet& timers) { timers_.merge(timers); }

  void set_metrics(MetricsSnapshot snapshot) {
    metrics_ = std::move(snapshot);
    have_metrics_ = true;
  }

  [[nodiscard]] std::string to_json() const;

  /// Serializes to `path` with the atomic-publish protocol.
  [[nodiscard]] repro::Status write_json(
      const std::filesystem::path& path) const;

 private:
  std::string tool_;
  std::string verdict_;
  std::vector<std::pair<std::string, std::string>> info_;
  std::vector<std::pair<std::string, double>> values_;
  TimerSet timers_;
  MetricsSnapshot metrics_;
  bool have_metrics_ = false;
};

}  // namespace repro::telemetry
