// Minimal JSON parsing for reprokit's own artifacts.
//
// The emission helpers live in json.hpp; this is their counterpart, added
// when the divergence ledger (docs/FORMATS.md) gained a load path: `repro-cli
// timeline` and the ledger round-trip tests read back JSONL records the tool
// itself wrote. The parser is a small recursive-descent over the full JSON
// grammar (objects, arrays, strings with escapes, numbers, literals) with a
// depth limit; it is not tuned for huge documents — ledger lines are short.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace repro::telemetry {

/// One parsed JSON value. A tagged aggregate rather than std::variant so
/// call sites can chain `.object.at("x").number` without visitors.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }

  /// Member lookup that tolerates missing keys and wrong kinds: returns
  /// nullptr unless this is an object containing `key`.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Convenience accessors returning fallbacks on kind mismatch / absence —
  /// ledger loading degrades field-by-field instead of failing wholesale.
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback) const;
  [[nodiscard]] std::uint64_t u64_or(std::string_view key,
                                     std::uint64_t fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Returns nullopt on any syntax error.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace repro::telemetry
