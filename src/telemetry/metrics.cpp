#include "telemetry/metrics.hpp"

#include <limits>

#include "telemetry/json.hpp"

namespace repro::telemetry {

namespace detail {

std::size_t shard_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return index;
}

}  // namespace detail

Histogram::Histogram(std::span<const double> bounds)
    : bounds_(bounds.begin(), bounds.end()) {
  shards_ = std::vector<Shard>(kMetricShards);
  for (auto& shard : shards_) {
    shard.counts = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

HistogramData Histogram::snapshot() const {
  HistogramData data;
  data.bounds = bounds_;
  data.counts.assign(bounds_.size() + 1, 0);
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < data.counts.size(); ++i) {
      data.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    data.sum += shard.sum.load(std::memory_order_relaxed);
    min = std::min(min, shard.min.load(std::memory_order_relaxed));
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t count : data.counts) data.count += count;
  data.min = data.count > 0 ? min : 0.0;
  data.max = data.count > 0 ? max : 0.0;
  return data;
}

void Histogram::reset() noexcept {
  for (auto& shard : shards_) {
    for (auto& count : shard.counts) {
      count.store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
    shard.max.store(-std::numeric_limits<double>::infinity(),
                    std::memory_order_relaxed);
  }
}

std::span<const double> latency_buckets_seconds() noexcept {
  static const double buckets[] = {1e-6, 1e-5, 1e-4, 1e-3,
                                   1e-2, 1e-1, 1.0,  10.0};
  return buckets;
}

std::span<const double> size_buckets_bytes() noexcept {
  static const double buckets[] = {4096.0,     65536.0,     1048576.0,
                                   8388608.0,  67108864.0,  268435456.0,
                                   1073741824.0};
  return buckets;
}

std::span<const double> micros_buckets() noexcept {
  static const double buckets[] = {1.0,     10.0,     100.0,     1000.0,
                                   10000.0, 100000.0, 1000000.0, 10000000.0};
  return buckets;
}

std::string MetricsSnapshot::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, name);
    out += ": ";
    json_append_number(out, value);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, name);
    out += ": ";
    json_append_number(out, value);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, name);
    out += ": {\"count\": ";
    json_append_number(out, data.count);
    out += ", \"sum\": ";
    json_append_number(out, data.sum);
    out += ", \"min\": ";
    json_append_number(out, data.min);
    out += ", \"max\": ";
    json_append_number(out, data.max);
    out += ", \"mean\": ";
    json_append_number(out, data.mean());
    out += ", \"buckets\": [";
    for (std::size_t i = 0; i < data.counts.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      if (i < data.bounds.size()) {
        json_append_number(out, data.bounds[i]);
      } else {
        out += "\"+inf\"";
      }
      out += ", \"count\": ";
      json_append_number(out, data.counts[i]);
      out += '}';
    }
    out += "]}";
  }
  out += first ? "}" : "\n  }";
  out += "\n}";
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string{name},
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string{name}, std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string{name},
                      std::unique_ptr<Histogram>(new Histogram(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::describe(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mu_);
  descriptions_.insert_or_assign(std::string{name}, std::string{help});
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->snapshot());
  }
  snapshot.descriptions.insert(descriptions_.begin(), descriptions_.end());
  return snapshot;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace repro::telemetry
