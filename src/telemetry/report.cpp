#include "telemetry/report.hpp"

#include "common/build_info.hpp"
#include "common/fs.hpp"
#include "telemetry/json.hpp"

namespace repro::telemetry {

void RunReport::add_info(std::string_view key, std::string_view value) {
  info_.emplace_back(std::string{key}, std::string{value});
}

void RunReport::add_value(std::string_view key, double value) {
  values_.emplace_back(std::string{key}, value);
}

std::string RunReport::to_json() const {
  std::string out;
  out.reserve(2048);
  out += "{\n  \"tool\": ";
  json_append_string(out, tool_);
  if (!verdict_.empty()) {
    out += ",\n  \"verdict\": ";
    json_append_string(out, verdict_);
  }
  // Build provenance makes artifacts from different machines attributable:
  // a cross-machine verdict mismatch can be triaged as toolchain vs. data.
  const BuildInfo build = repro::build_info();
  out += ",\n  \"provenance\": {\"compiler\": ";
  json_append_string(out, build.compiler);
  out += ", \"build_type\": ";
  json_append_string(out, build.build_type);
  out += ", \"version\": ";
  json_append_string(out, build.version);
  out += ", \"simd_level\": ";
  json_append_string(out, build.simd_level);
  out += "}";
  out += ",\n  \"info\": {";
  bool first = true;
  for (const auto& [key, value] : info_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, key);
    out += ": ";
    json_append_string(out, value);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"values\": {";
  first = true;
  for (const auto& [key, value] : values_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, key);
    out += ": ";
    json_append_number(out, value);
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"timers\": {";
  first = true;
  for (const std::string& name : timers_.names()) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, name);
    out += ": ";
    json_append_number(out, timers_.seconds(name));
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"metrics\": ";
  if (have_metrics_) {
    // Indent the nested snapshot document to keep the report readable.
    const std::string metrics_json = metrics_.to_json();
    for (const char c : metrics_json) {
      out += c;
      if (c == '\n') out += "  ";
    }
  } else {
    out += "{}";
  }
  out += "\n}\n";
  return out;
}

repro::Status RunReport::write_json(const std::filesystem::path& path) const {
  const std::string json = to_json();
  return repro::write_file(
             path, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(json.data()),
                       json.size()))
      .with_context("writing run report");
}

}  // namespace repro::telemetry
