#include "telemetry/prometheus.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace repro::telemetry {

namespace {

bool prometheus_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_double(std::string& out, double value) {
  // %g alone truncates to 6 significant digits — large cumulative _sum
  // values (e.g. microseconds) silently lose precision on every scrape.
  // Emit the shortest %g form that round-trips back to the exact double;
  // trailing-zero trimming is inherent to %g. Non-finite values never
  // round-trip through strtod equality, so they fall out of the loop at
  // %.17g, which prints inf/-inf/nan as %g would.
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

/// Sanitized name, de-duplicated against every name this exposition has
/// already emitted: the sanitizer is not injective ("9lives" and "_9lives"
/// both map to "_9lives"), and duplicate series would make the exposition
/// invalid. First mapped name wins; later collisions get "_2", "_3", ...
std::string unique_prometheus_name(std::string_view name,
                                   std::set<std::string>& used) {
  const std::string base = prometheus_name(name);
  std::string candidate = base;
  for (std::uint64_t ordinal = 2; !used.insert(candidate).second;
       ++ordinal) {
    candidate = base + "_" + std::to_string(ordinal);
  }
  return candidate;
}

/// `# HELP <prom> <text>` when `name` has a registered description.
/// Backslash and newline are escaped per the exposition format.
void append_help(std::string& out, const MetricsSnapshot& snapshot,
                 const std::string& name, const std::string& prom) {
  const auto it = snapshot.descriptions.find(name);
  if (it == snapshot.descriptions.end()) return;
  out += "# HELP " + prom + " ";
  for (const char c : it->second) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '\n';
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) out += prometheus_char(c) ? c : '_';
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  std::set<std::string> used;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = unique_prometheus_name(name, used);
    append_help(out, snapshot, name, prom);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = unique_prometheus_name(name, used);
    append_help(out, snapshot, name, prom);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    append_double(out, value);
    out += '\n';
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = unique_prometheus_name(name, used);
    append_help(out, snapshot, name, prom);
    out += "# TYPE " + prom + " histogram\n";
    // The snapshot's counts are per-bucket; Prometheus buckets are
    // cumulative ("samples <= le"), so accumulate while emitting.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      cumulative += i < data.counts.size() ? data.counts[i] : 0;
      out += prom + "_bucket{le=\"";
      append_double(out, data.bounds[i]);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    append_u64(out, data.count);
    out += '\n';
    out += prom + "_sum ";
    append_double(out, data.sum);
    out += '\n';
    out += prom + "_count ";
    append_u64(out, data.count);
    out += '\n';
  }
  return out;
}

}  // namespace repro::telemetry
