#include "telemetry/prometheus.hpp"

#include <cinttypes>
#include <cstdio>

namespace repro::telemetry {

namespace {

bool prometheus_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  out += buf;
}

}  // namespace

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) out += prometheus_char(c) ? c : '_';
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " ";
    append_u64(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " ";
    append_double(out, value);
    out += '\n';
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    // The snapshot's counts are per-bucket; Prometheus buckets are
    // cumulative ("samples <= le"), so accumulate while emitting.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < data.bounds.size(); ++i) {
      cumulative += i < data.counts.size() ? data.counts[i] : 0;
      out += prom + "_bucket{le=\"";
      append_double(out, data.bounds[i]);
      out += "\"} ";
      append_u64(out, cumulative);
      out += '\n';
    }
    out += prom + "_bucket{le=\"+Inf\"} ";
    append_u64(out, data.count);
    out += '\n';
    out += prom + "_sum ";
    append_double(out, data.sum);
    out += '\n';
    out += prom + "_count ";
    append_u64(out, data.count);
    out += '\n';
  }
  return out;
}

}  // namespace repro::telemetry
