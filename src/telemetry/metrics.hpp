// Lock-cheap metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Hot paths (chunk hashing, io_uring completion handling, stage-2 element
// compare) must be able to publish counts without taking a lock or bouncing
// one cache line between cores. Every metric therefore spreads its state
// over a small number of cache-line-padded shards; a thread picks its shard
// once (thread-local assignment) and updates it with a relaxed atomic RMW.
// Snapshots merge the shards — they pay the cross-core traffic exactly once,
// when someone actually reads the metrics.
//
// Registration (MetricsRegistry::counter(...) etc.) takes a mutex and is
// expected to happen once per site via a function-local static reference:
//
//   static telemetry::Counter& bytes =
//       telemetry::MetricsRegistry::global().counter("io.read.bytes");
//   bytes.add(request.size());
//
// Metric objects live for the process lifetime: references handed out stay
// valid across snapshot() and reset() (reset zeroes in place).
//
// Naming convention: lowercase dotted paths, coarse-to-fine —
// "<subsystem>.<object>.<unit-or-action>" (docs/OBSERVABILITY.md has the
// full catalog).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace repro::telemetry {

/// Shards per metric. More than the typical pool size would waste cache;
/// fewer threads than shards means zero sharing, more threads degrade
/// gracefully to shared cells.
inline constexpr std::size_t kMetricShards = 16;

namespace detail {

/// Stable per-thread shard slot: assigned round-robin on first use.
std::size_t shard_index() noexcept;

struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> value{0};
};

/// Relaxed add for atomic<double> without relying on C++20 floating-point
/// fetch_add support (CAS loop; these sites are warm, not hot).
inline void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

inline void atomic_min(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

inline void atomic_max(std::atomic<double>& target, double value) noexcept {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace detail

/// Monotonic counter. add() is a single relaxed fetch_add on a per-thread
/// shard — safe and cheap from any thread, including I/O teams and the pool.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    cells_[detail::shard_index()].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }

  /// Merged total over all shards (relaxed; exact once writers quiesce).
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  detail::CounterCell cells_[kMetricShards];
};

/// Last-writer-wins double value (queue depths, configured sizes, ratios).
class Gauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0};
};

/// Snapshot of one histogram: cumulative-style fixed buckets plus summary
/// statistics. buckets[i] counts samples <= bounds[i]; the final entry of
/// `counts` (one longer than `bounds`) is the overflow bucket.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;  ///< meaningless when count == 0
  double max = 0;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// Fixed-bucket histogram (latencies, batch sizes). record() is two relaxed
/// RMWs on the thread's shard plus a short CAS for the running sum.
class Histogram {
 public:
  void record(double value) noexcept {
    Shard& shard = shards_[detail::shard_index()];
    shard.counts[bucket_for(value)].fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(shard.sum, value);
    detail::atomic_min(shard.min, value);
    detail::atomic_max(shard.max, value);
  }

  [[nodiscard]] HistogramData snapshot() const;
  [[nodiscard]] std::span<const double> bounds() const noexcept {
    return bounds_;
  }
  void reset() noexcept;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::span<const double> bounds);

  [[nodiscard]] std::size_t bucket_for(double value) const noexcept {
    std::size_t bucket = 0;
    while (bucket < bounds_.size() && value > bounds_[bucket]) ++bucket;
    return bucket;
  }

  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<double> sum{0};
    std::atomic<double> min{0};
    std::atomic<double> max{0};
  };

  std::vector<double> bounds_;  ///< sorted ascending upper bounds
  std::vector<Shard> shards_;
};

/// Exponential latency buckets in seconds: 1us .. 10s.
std::span<const double> latency_buckets_seconds() noexcept;
/// Exponential size buckets in bytes: 4 KiB .. 1 GiB.
std::span<const double> size_buckets_bytes() noexcept;
/// Decade buckets in microseconds: 1us .. 10s. Used by the per-request
/// phase histograms and the WATCH push-latency SLO instruments.
std::span<const double> micros_buckets() noexcept;

/// Point-in-time merge of every registered metric, ready for JSON emission.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  /// Registered metric descriptions (MetricsRegistry::describe), keyed by
  /// the source metric name; the Prometheus renderer turns each into a
  /// `# HELP` line. Metrics without an entry render without HELP.
  std::map<std::string, std::string> descriptions;

  [[nodiscard]] std::string to_json() const;
};

class MetricsRegistry {
 public:
  /// Process-wide registry (leaky singleton: safe from static destructors
  /// and exiting threads). Tests may construct private registries.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. The returned reference is valid for
  /// the registry's lifetime. A histogram re-registered with different
  /// bounds keeps its original bounds.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Attaches a human-readable description to `name` (need not be
  /// registered yet); rendered as a `# HELP` line by the Prometheus
  /// exposition. Last writer wins. Optional: undescribed metrics render
  /// exactly as they did before descriptions existed.
  void describe(std::string_view name, std::string_view help);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric in place; outstanding references stay valid.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::string, std::less<>> descriptions_;
};

}  // namespace repro::telemetry
