// Prometheus text exposition (format version 0.0.4) rendered from a
// MetricsSnapshot, so any scraper that speaks the de-facto fleet standard
// can collect a daemon's registry without an HTTP stack on our side.
//
// Mapping rules:
//   * metric names keep the registry's dotted path with every character
//     outside [a-zA-Z0-9_:] rewritten to '_' ("svc.watch.sessions" becomes
//     "svc_watch_sessions"); a leading digit gains a '_' prefix ("9lives"
//     becomes "_9lives");
//   * the mapping is not injective — distinct registry names can collapse
//     onto one Prometheus name ("9lives" and "_9lives" both map to
//     "_9lives"). The renderer de-duplicates per exposition: the first
//     name (registry order, i.e. sorted) keeps the mapped form, later
//     collisions get an ordinal suffix ("_9lives_2", "_9lives_3", ...);
//   * a name with a registered description (MetricsRegistry::describe)
//     gains a `# HELP <name> <text>` line before its `# TYPE` line, with
//     backslash and newline escaped per the exposition format. Undescribed
//     metrics render without HELP, byte-identical to the pre-HELP output;
//   * counters render as `# TYPE <name> counter` plus one sample line;
//   * gauges render as `# TYPE <name> gauge`;
//   * histograms render as cumulative `<name>_bucket{le="..."}` series
//     (the registry snapshot stores per-bucket counts; this renderer
//     accumulates them), a closing `le="+Inf"` bucket equal to the total
//     count, and the standard `<name>_sum` / `<name>_count` pair.
//
// Output is deterministic for a given snapshot — maps iterate sorted, and
// floating-point samples print with round-trip precision (shortest %g form
// whose strtod parse equals the value) — so tests can assert exact lines
// and scrapers never lose digits of large cumulative sums.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace repro::telemetry {

/// Renders `snapshot` as Prometheus 0.0.4 text exposition.
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Rewrites one registry metric name into the Prometheus alphabet
/// ([a-zA-Z0-9_:], no leading digit).
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace repro::telemetry
