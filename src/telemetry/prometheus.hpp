// Prometheus text exposition (format version 0.0.4) rendered from a
// MetricsSnapshot, so any scraper that speaks the de-facto fleet standard
// can collect a daemon's registry without an HTTP stack on our side.
//
// Mapping rules:
//   * metric names keep the registry's dotted path with every character
//     outside [a-zA-Z0-9_:] rewritten to '_' ("svc.watch.sessions" becomes
//     "svc_watch_sessions");
//   * counters render as `# TYPE <name> counter` plus one sample line;
//   * gauges render as `# TYPE <name> gauge`;
//   * histograms render as cumulative `<name>_bucket{le="..."}` series
//     (the registry snapshot stores per-bucket counts; this renderer
//     accumulates them), a closing `le="+Inf"` bucket equal to the total
//     count, and the standard `<name>_sum` / `<name>_count` pair.
//
// Output is deterministic for a given snapshot — maps iterate sorted, and
// numbers use fixed printf formats — so tests can assert on exact lines.
#pragma once

#include <string>

#include "telemetry/metrics.hpp"

namespace repro::telemetry {

/// Renders `snapshot` as Prometheus 0.0.4 text exposition.
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snapshot);

/// Rewrites one registry metric name into the Prometheus alphabet
/// ([a-zA-Z0-9_:], no leading digit).
[[nodiscard]] std::string prometheus_name(std::string_view name);

}  // namespace repro::telemetry
