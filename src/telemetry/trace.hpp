// RAII span tracing with Chrome trace-event export.
//
// TraceSpan objects mark begin/end of a region of interest (a capture, a
// Merkle build, one BFS level, one I/O batch) together with the recording
// thread and small key=value args. Spans land in per-thread ring buffers;
// nothing is shared on the hot path beyond one uncontended per-thread mutex
// acquisition per completed span. When tracing is disabled (the default) a
// span costs a single relaxed atomic load — cheap enough to leave the
// instrumentation compiled in everywhere.
//
// Tracer::write_chrome_trace() flushes every thread's buffer as Chrome
// trace-event JSON ("B"/"E" duration events), loadable in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. The CLI wires this to
// `--trace-out=PATH`; see docs/OBSERVABILITY.md.
//
// Besides spans, the tracer buffers *counter samples* ("C" phase events):
// timestamped numeric values such as RSS or io_uring in-flight depth, fed by
// telemetry::ResourceSampler. Counters render as stacked area charts in the
// trace viewer, aligned with the spans on the same timeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace repro::telemetry {

namespace detail {

struct TraceBuffer;

extern std::atomic<bool> g_trace_enabled;

/// Nanoseconds on the steady clock since the process's trace epoch (first
/// call). All spans share this epoch, so cross-thread ordering is honest.
std::uint64_t trace_now_ns() noexcept;

/// Nonzero pseudo-random 64-bit id (splitmix64 over a per-process seed).
/// Not cryptographic — ids only need to be unique enough to join traces.
std::uint64_t random_trace_id() noexcept;

}  // namespace detail

/// Trace identity carried across process boundaries (the RSVC wire
/// trailer). `trace_hi`/`trace_lo` form a 128-bit trace id shared by every
/// span in one causal chain; `span_id` names the span that acts as parent
/// for linked children. A default-constructed context is invalid — spans
/// built from it stay unlinked, so propagation degrades to today's
/// behavior when either end has no identity to offer.
struct TraceContext {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const noexcept {
    return (trace_hi | trace_lo) != 0;
  }

  /// Fresh 128-bit trace id with no parent span (a root). Returns an
  /// invalid context while tracing is disabled, so callers can branch on
  /// valid() to decide whether to propagate anything at all.
  [[nodiscard]] static TraceContext new_root() noexcept;

  /// 32 lowercase hex chars (OpenTelemetry-style trace id rendering).
  [[nodiscard]] std::string trace_id_hex() const;
};

/// 16 lowercase hex chars for one span id.
[[nodiscard]] std::string span_id_hex(std::uint64_t id);

/// Identity attached to one recorded span; all-zero for unlinked spans.
struct SpanIds {
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
};

class Tracer {
 public:
  /// Process-wide tracer (leaky singleton, safe from exiting threads).
  static Tracer& global();

  void set_enabled(bool on) noexcept {
    detail::g_trace_enabled.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() noexcept {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
  }

  /// Names the calling thread in trace output ("pool-3", "io-producer").
  /// Cheap: does not allocate the thread's ring until its first span.
  void set_thread_name(std::string_view name);

  /// Spans currently buffered / overwritten because a ring filled up.
  [[nodiscard]] std::uint64_t span_count();
  [[nodiscard]] std::uint64_t dropped_spans();

  /// Buffers one counter sample (Chrome "C" phase) at the current trace
  /// timestamp. Samples arrive at sampler rate (tens of Hz), so a plain
  /// mutex-guarded vector is plenty; calls are no-ops while tracing is
  /// disabled. `name` becomes the counter track's title in the viewer.
  void record_counter(std::string_view name, double value);

  /// Counter samples currently buffered (for tests / introspection).
  [[nodiscard]] std::uint64_t counter_count();

  /// Drops all buffered spans (ring memory is released).
  void clear();

  /// Chrome trace-event JSON document for everything buffered so far.
  [[nodiscard]] std::string chrome_trace_json();

  /// Writes chrome_trace_json() to `path` (atomic publish).
  repro::Status write_chrome_trace(const std::filesystem::path& path);

  /// Called by ~TraceSpan; not for direct use. `ids` carries the span's
  /// trace identity (all-zero for unlinked spans).
  void record(std::string_view name, std::uint64_t begin_ns,
              std::uint64_t end_ns, std::string_view args_json,
              const SpanIds& ids = {});

 private:
  struct CounterSample {
    std::string name;
    std::uint64_t ts_ns = 0;
    double value = 0.0;
  };

  Tracer() = default;
  detail::TraceBuffer& thread_buffer();

  std::mutex mu_;
  std::vector<std::unique_ptr<detail::TraceBuffer>> buffers_;
  std::mutex counter_mu_;
  std::vector<CounterSample> counters_;
};

/// RAII span: records [construction, destruction) of the enclosing scope
/// under `name`. Args attach extra numbers/strings visible in Perfetto's
/// span details. All methods are no-ops while tracing is disabled.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) noexcept {
    if (!Tracer::enabled()) return;
    active_ = true;
    name_len_ = static_cast<std::uint8_t>(
        std::min(name.size(), sizeof(name_)));
    std::memcpy(name_, name.data(), name_len_);
    begin_ns_ = detail::trace_now_ns();
  }

  /// Span linked under `parent`: adopts the parent's trace id, records
  /// parent.span_id as its parent span, and mints a fresh span id of its
  /// own. An invalid parent degrades to the plain unlinked constructor —
  /// callers can pass a context decoded from the wire unconditionally.
  TraceSpan(std::string_view name, const TraceContext& parent) noexcept;

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { end(); }

  TraceSpan& arg(std::string_view key, std::uint64_t value) noexcept;
  TraceSpan& arg(std::string_view key, std::int64_t value) noexcept;
  TraceSpan& arg(std::string_view key, double value) noexcept;
  TraceSpan& arg(std::string_view key, std::string_view value) noexcept;

  /// This span's identity for propagation (e.g. into the RSVC trailer or a
  /// child span). Invalid when the span is unlinked or tracing is off.
  [[nodiscard]] TraceContext context() const noexcept {
    return {ids_.trace_hi, ids_.trace_lo, ids_.span_id};
  }

  /// Ends the span now; the destructor becomes a no-op.
  void end() noexcept {
    if (!active_) return;
    active_ = false;
    Tracer::global().record(std::string_view{name_, name_len_}, begin_ns_,
                            detail::trace_now_ns(),
                            std::string_view{args_, args_len_}, ids_);
  }

 private:
  /// Appends `,"key":<payload>` if it fits; drops the arg otherwise.
  bool append_key(std::string_view key, std::size_t payload_reserve) noexcept;
  void append_raw(std::string_view text) noexcept;

  bool active_ = false;
  std::uint8_t name_len_ = 0;
  std::uint8_t args_len_ = 0;
  std::uint64_t begin_ns_ = 0;
  SpanIds ids_;
  char name_[48];
  char args_[168];
};

}  // namespace repro::telemetry
