#include "telemetry/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <random>

#include "common/fs.hpp"
#include "telemetry/json.hpp"

namespace repro::telemetry {

namespace detail {

std::atomic<bool> g_trace_enabled{false};

std::uint64_t trace_now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

std::uint64_t random_trace_id() noexcept {
  static const std::uint64_t seed = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<std::uint64_t> counter{0};
  // splitmix64: each increment yields an independent-looking 64-bit value.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ull *
                 (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z != 0 ? z : 1;
}

namespace {

/// One buffered span. Fixed-size payloads keep the ring allocation-free.
struct TraceEvent {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  SpanIds ids;
  std::uint8_t name_len = 0;
  std::uint8_t args_len = 0;
  char name[48];
  char args[168];
};

std::size_t ring_capacity() noexcept {
  static const std::size_t capacity = [] {
    const char* env = std::getenv("REPRO_TRACE_BUFFER_EVENTS");
    if (env != nullptr) {
      const long parsed = std::atol(env);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{16384};
  }();
  return capacity;
}

}  // namespace

/// Per-thread span ring. The owning thread pushes under `mu` (uncontended
/// in steady state); flush/clear lock the same mutex from the reader side.
/// The ring storage is allocated lazily on the first span so threads that
/// never trace (or runs with tracing off) pay only this struct.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  std::uint64_t recorded = 0;  ///< total spans pushed (monotonic)
  std::uint64_t tid = 0;       ///< registration order, stable for the run
  std::string name;            ///< optional thread name

  void push(std::string_view span_name, std::uint64_t begin_ns,
            std::uint64_t end_ns, std::string_view args_json,
            const SpanIds& ids) {
    if (ring.empty()) ring.resize(ring_capacity());
    TraceEvent& event = ring[recorded % ring.size()];
    event.begin_ns = begin_ns;
    event.end_ns = end_ns;
    event.ids = ids;
    event.name_len = static_cast<std::uint8_t>(
        std::min(span_name.size(), sizeof(event.name)));
    std::memcpy(event.name, span_name.data(), event.name_len);
    event.args_len = static_cast<std::uint8_t>(
        std::min(args_json.size(), sizeof(event.args)));
    std::memcpy(event.args, args_json.data(), event.args_len);
    ++recorded;
  }
};

namespace {

thread_local TraceBuffer* t_buffer = nullptr;

}  // namespace

}  // namespace detail

Tracer& Tracer::global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

detail::TraceBuffer& Tracer::thread_buffer() {
  if (detail::t_buffer == nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto buffer = std::make_unique<detail::TraceBuffer>();
    buffer->tid = buffers_.size();
    detail::t_buffer = buffer.get();
    buffers_.push_back(std::move(buffer));
  }
  return *detail::t_buffer;
}

void Tracer::set_thread_name(std::string_view name) {
  detail::TraceBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.name.assign(name);
}

void Tracer::record(std::string_view name, std::uint64_t begin_ns,
                    std::uint64_t end_ns, std::string_view args_json,
                    const SpanIds& ids) {
  detail::TraceBuffer& buffer = thread_buffer();
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.push(name, begin_ns, end_ns, args_json, ids);
}

TraceContext TraceContext::new_root() noexcept {
  if (!Tracer::enabled()) return {};
  return {detail::random_trace_id(), detail::random_trace_id(), 0};
}

namespace {

void append_hex_u64(std::string& out, std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(value));
  out.append(buf, 16);
}

}  // namespace

std::string TraceContext::trace_id_hex() const {
  std::string out;
  out.reserve(32);
  append_hex_u64(out, trace_hi);
  append_hex_u64(out, trace_lo);
  return out;
}

std::string span_id_hex(std::uint64_t id) {
  std::string out;
  out.reserve(16);
  append_hex_u64(out, id);
  return out;
}

namespace {

// Counter samples arrive at sampler rate; bound the buffer so a run that
// forgets to stop its sampler cannot grow without limit. At the default
// 50 ms period this covers ~54 minutes of samples per counter octet.
constexpr std::size_t kMaxCounterSamples = 1 << 18;

}  // namespace

void Tracer::record_counter(std::string_view name, double value) {
  if (!enabled()) return;
  const std::uint64_t ts = detail::trace_now_ns();
  std::lock_guard<std::mutex> lock(counter_mu_);
  if (counters_.size() >= kMaxCounterSamples) return;
  counters_.push_back({std::string{name}, ts, value});
}

std::uint64_t Tracer::counter_count() {
  std::lock_guard<std::mutex> lock(counter_mu_);
  return counters_.size();
}

std::uint64_t Tracer::span_count() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    total += std::min<std::uint64_t>(buffer->recorded, buffer->ring.size());
  }
  return total;
}

std::uint64_t Tracer::dropped_spans() {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->recorded > buffer->ring.size()) {
      dropped += buffer->recorded - buffer->ring.size();
    }
  }
  return dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->recorded = 0;
    buffer->ring.clear();
    buffer->ring.shrink_to_fit();
  }
  std::lock_guard<std::mutex> counter_lock(counter_mu_);
  counters_.clear();
  counters_.shrink_to_fit();
}

namespace {

struct ThreadSpans {
  std::uint64_t tid = 0;
  std::string name;
  std::vector<detail::TraceEvent> spans;  ///< oldest -> newest
};

void append_ts_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1000.0);
  out += buf;
}

/// Emits one thread's spans as properly nested "B"/"E" pairs. Spans are
/// recorded at end time, so re-derive nesting: sort by (begin asc, end
/// desc) — outermost first — then sweep with a stack, closing every span
/// that ends before the next one begins. RAII guarantees spans on one
/// thread are nested or disjoint; the `last_ts` clamp keeps the emitted
/// stream monotonic even for pathological timestamps.
void emit_thread_events(std::string& out, const ThreadSpans& thread,
                        bool* first_event) {
  struct SpanRef {
    const detail::TraceEvent* event;
    std::size_t order;
  };
  std::vector<SpanRef> spans;
  spans.reserve(thread.spans.size());
  for (std::size_t i = 0; i < thread.spans.size(); ++i) {
    spans.push_back({&thread.spans[i], i});
  }
  std::sort(spans.begin(), spans.end(),
            [](const SpanRef& a, const SpanRef& b) {
              if (a.event->begin_ns != b.event->begin_ns) {
                return a.event->begin_ns < b.event->begin_ns;
              }
              if (a.event->end_ns != b.event->end_ns) {
                return a.event->end_ns > b.event->end_ns;
              }
              return a.order < b.order;
            });

  std::uint64_t last_ts = 0;
  auto emit = [&](const detail::TraceEvent& event, bool is_begin) {
    const std::uint64_t raw = is_begin ? event.begin_ns : event.end_ns;
    last_ts = std::max(last_ts, raw);
    out += *first_event ? "\n    " : ",\n    ";
    *first_event = false;
    out += "{\"name\": ";
    json_append_string(out,
                       std::string_view{event.name, event.name_len});
    out += ", \"cat\": \"repro\", \"ph\": \"";
    out += is_begin ? 'B' : 'E';
    out += "\", \"ts\": ";
    append_ts_us(out, last_ts);
    out += ", \"pid\": 1, \"tid\": ";
    json_append_number(out, thread.tid);
    // Trace identity rides in args so merged traces (repro-cli trace-merge)
    // can join client and server spans by trace_id / parent_span_id.
    const bool has_ids =
        (event.ids.trace_hi | event.ids.trace_lo) != 0;
    if (is_begin && (event.args_len > 0 || has_ids)) {
      out += ", \"args\": {";
      out.append(event.args, event.args_len);
      if (has_ids) {
        if (event.args_len > 0) out += ',';
        out += "\"trace_id\": \"";
        out += TraceContext{event.ids.trace_hi, event.ids.trace_lo, 0}
                   .trace_id_hex();
        out += "\", \"span_id\": \"";
        out += span_id_hex(event.ids.span_id);
        out += '"';
        if (event.ids.parent_id != 0) {
          out += ", \"parent_span_id\": \"";
          out += span_id_hex(event.ids.parent_id);
          out += '"';
        }
      }
      out += '}';
    }
    out += '}';
  };

  std::vector<const detail::TraceEvent*> stack;
  for (const SpanRef& ref : spans) {
    while (!stack.empty() && stack.back()->end_ns <= ref.event->begin_ns) {
      emit(*stack.back(), false);
      stack.pop_back();
    }
    emit(*ref.event, true);
    stack.push_back(ref.event);
  }
  while (!stack.empty()) {
    emit(*stack.back(), false);
    stack.pop_back();
  }
}

}  // namespace

std::string Tracer::chrome_trace_json() {
  std::vector<ThreadSpans> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.reserve(buffers_.size());
    for (const auto& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      ThreadSpans thread;
      thread.tid = buffer->tid;
      thread.name = buffer->name;
      const std::size_t capacity = buffer->ring.size();
      const std::size_t kept =
          static_cast<std::size_t>(std::min<std::uint64_t>(
              buffer->recorded, static_cast<std::uint64_t>(capacity)));
      thread.spans.reserve(kept);
      const std::uint64_t start = buffer->recorded - kept;
      for (std::uint64_t i = start; i < buffer->recorded; ++i) {
        thread.spans.push_back(buffer->ring[i % capacity]);
      }
      threads.push_back(std::move(thread));
    }
  }

  std::string out;
  out.reserve(4096);
  out += "{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": "
         "{\"droppedSpans\": ";
  json_append_number(out, dropped_spans());
  out += "},\n  \"traceEvents\": [";
  bool first = true;

  // Metadata: process name + per-thread names.
  out += "\n    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
         "\"args\": {\"name\": \"reprokit\"}}";
  first = false;
  for (const ThreadSpans& thread : threads) {
    out += ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": ";
    json_append_number(out, thread.tid);
    out += ", \"args\": {\"name\": ";
    if (thread.name.empty()) {
      json_append_string(out, "thread-" + std::to_string(thread.tid));
    } else {
      json_append_string(out, thread.name);
    }
    out += "}}";
  }

  for (const ThreadSpans& thread : threads) {
    emit_thread_events(out, thread, &first);
  }

  // Counter samples ("C" phase). Chrome keys counter tracks by (pid, name),
  // so all samples share pid 1; sort by timestamp since concurrent
  // recorders can take their timestamps slightly out of lock order.
  std::vector<CounterSample> counters;
  {
    std::lock_guard<std::mutex> counter_lock(counter_mu_);
    counters = counters_;
  }
  std::stable_sort(counters.begin(), counters.end(),
                   [](const CounterSample& a, const CounterSample& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  for (const CounterSample& sample : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    out += "{\"name\": ";
    json_append_string(out, sample.name);
    out += ", \"cat\": \"repro\", \"ph\": \"C\", \"ts\": ";
    append_ts_us(out, sample.ts_ns);
    out += ", \"pid\": 1, \"tid\": 0, \"args\": {\"value\": ";
    json_append_number(out, sample.value);
    out += "}}";
  }
  out += "\n  ]\n}\n";
  return out;
}

repro::Status Tracer::write_chrome_trace(const std::filesystem::path& path) {
  const std::string json = chrome_trace_json();
  return repro::write_file(
             path, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(json.data()),
                       json.size()))
      .with_context("writing chrome trace");
}

TraceSpan::TraceSpan(std::string_view name,
                     const TraceContext& parent) noexcept {
  if (!Tracer::enabled()) return;
  active_ = true;
  name_len_ =
      static_cast<std::uint8_t>(std::min(name.size(), sizeof(name_)));
  std::memcpy(name_, name.data(), name_len_);
  if (parent.valid()) {
    ids_.trace_hi = parent.trace_hi;
    ids_.trace_lo = parent.trace_lo;
    ids_.parent_id = parent.span_id;
    ids_.span_id = detail::random_trace_id();
  }
  begin_ns_ = detail::trace_now_ns();
}

bool TraceSpan::append_key(std::string_view key,
                           std::size_t payload_reserve) noexcept {
  const std::size_t need = 1 + key.size() + 3 + payload_reserve;
  if (static_cast<std::size_t>(args_len_) + need > sizeof(args_)) {
    return false;
  }
  std::size_t len = args_len_;
  if (len > 0) args_[len++] = ',';
  args_[len++] = '"';
  std::memcpy(args_ + len, key.data(), key.size());
  len += key.size();
  args_[len++] = '"';
  args_[len++] = ':';
  args_len_ = static_cast<std::uint8_t>(len);
  return true;
}

void TraceSpan::append_raw(std::string_view text) noexcept {
  const std::size_t room = sizeof(args_) - args_len_;
  const std::size_t take = std::min(text.size(), room);
  std::memcpy(args_ + args_len_, text.data(), take);
  args_len_ = static_cast<std::uint8_t>(args_len_ + take);
}

TraceSpan& TraceSpan::arg(std::string_view key, std::uint64_t value) noexcept {
  if (!active_) return *this;
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%llu",
                              static_cast<unsigned long long>(value));
  if (n > 0 && append_key(key, static_cast<std::size_t>(n))) {
    append_raw({buf, static_cast<std::size_t>(n)});
  }
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, std::int64_t value) noexcept {
  if (!active_) return *this;
  char buf[24];
  const int n = std::snprintf(buf, sizeof buf, "%lld",
                              static_cast<long long>(value));
  if (n > 0 && append_key(key, static_cast<std::size_t>(n))) {
    append_raw({buf, static_cast<std::size_t>(n)});
  }
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key, double value) noexcept {
  if (!active_) return *this;
  char buf[40];
  int n;
  if (value == static_cast<double>(static_cast<long long>(value))) {
    n = std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(value));
  } else {
    n = std::snprintf(buf, sizeof buf, "%.6g", value);
  }
  if (n > 0 && append_key(key, static_cast<std::size_t>(n))) {
    append_raw({buf, static_cast<std::size_t>(n)});
  }
  return *this;
}

TraceSpan& TraceSpan::arg(std::string_view key,
                          std::string_view value) noexcept {
  if (!active_) return *this;
  // Escape into a bounded scratch buffer; oversized values truncate.
  char buf[96];
  std::size_t len = 0;
  buf[len++] = '"';
  for (const char c : value) {
    if (len + 3 >= sizeof(buf)) break;
    if (c == '"' || c == '\\') buf[len++] = '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      buf[len++] = ' ';
    } else {
      buf[len++] = c;
    }
  }
  buf[len++] = '"';
  if (append_key(key, len)) append_raw({buf, len});
  return *this;
}

}  // namespace repro::telemetry
