#include "telemetry/json_parse.hpp"

#include <cctype>
#include <cstdlib>

namespace repro::telemetry {

namespace {

/// Recursive-descent parser over the full JSON grammar. Depth-limited so a
/// corrupt artifact cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return parse_string(&out->string);
    }
    if (literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return true;
    }
    if (literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return true;
    }
    if (literal("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return parse_number(out);
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Our writers only emit \u escapes for control characters; decode
          // the Latin-1 range and substitute '?' beyond it rather than
          // carrying full UTF-16 surrogate handling.
          *out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return true;
  }

  bool parse_array(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return false;
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!parse_value(&value, depth + 1)) return false;
      out->object.insert_or_assign(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  JsonValue document;
  Parser parser(text);
  if (!parser.parse_document(&document)) return std::nullopt;
  return document;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(std::string{key});
  return it == object.end() ? nullptr : &it->second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kNumber ? value->number
                                                          : fallback;
}

std::uint64_t JsonValue::u64_or(std::string_view key,
                                std::uint64_t fallback) const {
  const JsonValue* value = find(key);
  if (value == nullptr || value->kind != Kind::kNumber || value->number < 0) {
    return fallback;
  }
  return static_cast<std::uint64_t>(value->number);
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* value = find(key);
  return value != nullptr && value->kind == Kind::kString
             ? value->string
             : std::string{fallback};
}

}  // namespace repro::telemetry
