#include "telemetry/resource_sampler.hpp"

#include <cstdio>
#include <cstring>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#define REPRO_HAVE_RUSAGE 1
#endif

namespace repro::telemetry {

namespace {

#if defined(__linux__)

/// Current RSS from /proc/self/statm (field 2, resident pages).
double read_rss_bytes() {
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return -1.0;
  long size_pages = 0;
  long resident_pages = 0;
  const int parsed = std::fscanf(file, "%ld %ld", &size_pages, &resident_pages);
  std::fclose(file);
  if (parsed != 2) return -1.0;
  const long page_size = ::sysconf(_SC_PAGESIZE);
  if (page_size <= 0) return -1.0;
  return static_cast<double>(resident_pages) * static_cast<double>(page_size);
}

/// Bytes through the block layer from /proc/self/io. The file needs no
/// privileges for one's own process but may be absent (CONFIG_TASK_IO_ACCOUNTING
/// off, some containers): report -1 rather than 0 so absent != idle.
void read_io_bytes(double* read_bytes, double* written_bytes) {
  *read_bytes = -1.0;
  *written_bytes = -1.0;
  std::FILE* file = std::fopen("/proc/self/io", "r");
  if (file == nullptr) return;
  char line[128];
  while (std::fgets(line, sizeof line, file) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "read_bytes: %llu", &value) == 1) {
      *read_bytes = static_cast<double>(value);
    } else if (std::sscanf(line, "write_bytes: %llu", &value) == 1) {
      *written_bytes = static_cast<double>(value);
    }
  }
  std::fclose(file);
}

#else

double read_rss_bytes() { return -1.0; }
void read_io_bytes(double* read_bytes, double* written_bytes) {
  *read_bytes = -1.0;
  *written_bytes = -1.0;
}

#endif  // __linux__

void read_cpu_seconds(double* user_seconds, double* sys_seconds) {
  *user_seconds = -1.0;
  *sys_seconds = -1.0;
#if defined(REPRO_HAVE_RUSAGE)
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) == 0) {
    *user_seconds = static_cast<double>(usage.ru_utime.tv_sec) +
                    static_cast<double>(usage.ru_utime.tv_usec) * 1e-6;
    *sys_seconds = static_cast<double>(usage.ru_stime.tv_sec) +
                   static_cast<double>(usage.ru_stime.tv_usec) * 1e-6;
  }
#endif
}

/// Internal in-flight gauges the sampler mirrors into the trace. Referencing
/// them here registers them at value 0 even before the owning subsystem runs,
/// so counter tracks exist (flat at zero) in every trace.
struct InternalGauges {
  Gauge& uring_inflight;
  Gauge& pool_queue_depth;
  Gauge& stream_bytes_inflight;
  Gauge& svc_connections_open;
  Gauge& svc_requests_inflight;
  Gauge& svc_cache_bytes;
  Gauge& svc_watch_sessions;
  Gauge& svc_watch_buffered_bytes;

  static InternalGauges& get() {
    static InternalGauges gauges{
        MetricsRegistry::global().gauge("io.uring.inflight"),
        MetricsRegistry::global().gauge("par.pool.queue_depth"),
        MetricsRegistry::global().gauge("io.stream.bytes_inflight"),
        MetricsRegistry::global().gauge("svc.connections.open"),
        MetricsRegistry::global().gauge("svc.requests.inflight"),
        MetricsRegistry::global().gauge("svc.cache.bytes"),
        MetricsRegistry::global().gauge("svc.watch.sessions"),
        MetricsRegistry::global().gauge("svc.watch.buffered_bytes")};
    return gauges;
  }
};

}  // namespace

ResourceSnapshot sample_process_resources() {
  ResourceSnapshot snapshot;
  snapshot.rss_bytes = read_rss_bytes();
  read_cpu_seconds(&snapshot.user_cpu_seconds, &snapshot.sys_cpu_seconds);
  read_io_bytes(&snapshot.read_bytes, &snapshot.written_bytes);
  return snapshot;
}

void ResourceSampler::start(Options options) {
  if (running_.load(std::memory_order_relaxed)) return;
  options_ = options;
  samples_.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  sample_once();  // guarantee at least one sample even for instant commands
  thread_ = std::thread([this] { run_loop(); });
}

void ResourceSampler::stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  sample_once();  // final reading so the trace's last tick is current
  running_.store(false, std::memory_order_relaxed);
}

void ResourceSampler::run_loop() {
  Tracer::global().set_thread_name("resource-sampler");
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, options_.period,
                     [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    sample_once();
    lock.lock();
  }
}

void ResourceSampler::sample_once() {
  const ResourceSnapshot snapshot = sample_process_resources();
  InternalGauges& internal = InternalGauges::get();

  const struct {
    const char* name;
    double value;
  } counters[] = {
      {"res.rss_bytes", snapshot.rss_bytes},
      {"res.cpu.user_seconds", snapshot.user_cpu_seconds},
      {"res.cpu.sys_seconds", snapshot.sys_cpu_seconds},
      {"res.io.read_bytes", snapshot.read_bytes},
      {"res.io.written_bytes", snapshot.written_bytes},
      {"io.uring.inflight", internal.uring_inflight.value()},
      {"par.pool.queue_depth", internal.pool_queue_depth.value()},
      {"io.stream.bytes_inflight", internal.stream_bytes_inflight.value()},
      {"svc.connections.open", internal.svc_connections_open.value()},
      {"svc.requests.inflight", internal.svc_requests_inflight.value()},
      {"svc.cache.bytes", internal.svc_cache_bytes.value()},
      {"svc.watch.sessions", internal.svc_watch_sessions.value()},
      {"svc.watch.buffered_bytes", internal.svc_watch_buffered_bytes.value()},
  };

  Tracer& tracer = Tracer::global();
  MetricsRegistry& registry = MetricsRegistry::global();
  for (const auto& counter : counters) {
    if (counter.value < 0.0) continue;  // unavailable on this platform
    if (options_.emit_trace_counters) {
      tracer.record_counter(counter.name, counter.value);
    }
    // The io/par gauges already live in the registry; only the res.* process
    // readings need a gauge mirror.
    if (options_.emit_gauges &&
        std::strncmp(counter.name, "res.", 4) == 0) {
      registry.gauge(counter.name).set(counter.value);
    }
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace repro::telemetry
