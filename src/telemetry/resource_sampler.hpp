// Live resource sampling for trace timelines.
//
// A background thread periodically samples process-level resources (resident
// set size, user/system CPU time, bytes read/written through the block layer)
// and the library's own in-flight gauges (io_uring outstanding SQEs,
// thread-pool queue depth, streamer bytes in flight), then republishes them
// two ways:
//
//   * Chrome trace counter events ("C" phase) via Tracer::global(), so a
//     `--trace-out` trace shows RSS / CPU / queue-depth tracks aligned with
//     the phase spans on the same timeline; and
//   * `res.*` gauges in MetricsRegistry::global(), so `--metrics-out` and run
//     reports capture the final values.
//
// Sampling is cheap (a few /proc reads plus getrusage per tick, default
// every 50 ms) and lives entirely off the compare hot path: the perf_smoke
// gate asserts < 2% overhead with the sampler enabled at the default period.
// See docs/OBSERVABILITY.md for the counter catalog.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

namespace repro::telemetry {

/// One point-in-time reading of process resources. Fields the platform
/// cannot provide (e.g. /proc/self/io absent) are left at -1 and are not
/// republished as counters or gauges.
struct ResourceSnapshot {
  double rss_bytes = -1.0;
  double user_cpu_seconds = -1.0;
  double sys_cpu_seconds = -1.0;
  double read_bytes = -1.0;
  double written_bytes = -1.0;
};

/// Samples the current process once. Never fails; unavailable fields stay
/// at -1. Exposed separately from the sampler for tests and one-shot use.
[[nodiscard]] ResourceSnapshot sample_process_resources();

/// Background sampling thread. start()/stop() are idempotent; the
/// destructor stops the thread. One sample is taken synchronously inside
/// start() and one inside stop(), so even sub-period commands get at least
/// two samples per counter in their trace.
class ResourceSampler {
 public:
  struct Options {
    std::chrono::milliseconds period{50};
    /// Republish samples as Chrome "C" counter events (needs tracing on).
    bool emit_trace_counters = true;
    /// Republish samples as `res.*` gauges in the global registry.
    bool emit_gauges = true;
  };

  ResourceSampler() = default;
  ~ResourceSampler() { stop(); }

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  void start(Options options);
  void start() { start(Options{}); }
  void stop();

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_relaxed);
  }
  /// Samples taken since start() (monotonic; for tests).
  [[nodiscard]] std::uint64_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void run_loop();
  void sample_once();

  Options options_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> samples_{0};
  bool stop_requested_ = false;  ///< guarded by mu_
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace repro::telemetry
