#include "baseline/direct.hpp"

#include <algorithm>
#include <numeric>

#include "ckpt/format.hpp"
#include "common/fs.hpp"
#include "common/log.hpp"

namespace repro::baseline {

repro::Result<cmp::CompareReport> direct_compare(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b, const DirectOptions& options) {
  if (options.evict_cache) {
    for (const auto& path : {checkpoint_a, checkpoint_b}) {
      const repro::Status status = repro::evict_page_cache(path);
      if (!status.is_ok()) {
        REPRO_LOG_WARN << "cache eviction failed: " << status.to_string();
      }
    }
  }

  Stopwatch total;
  cmp::CompareReport report;

  std::optional<ckpt::CheckpointReader> reader_a;
  std::optional<ckpt::CheckpointReader> reader_b;
  std::unique_ptr<io::IoBackend> backend_a;
  std::unique_ptr<io::IoBackend> backend_b;
  {
    PhaseTimer timer(report.timers, cmp::kPhaseSetup);
    REPRO_ASSIGN_OR_RETURN(auto opened_a,
                           ckpt::CheckpointReader::open(checkpoint_a));
    REPRO_ASSIGN_OR_RETURN(auto opened_b,
                           ckpt::CheckpointReader::open(checkpoint_b));
    reader_a.emplace(std::move(opened_a));
    reader_b.emplace(std::move(opened_b));
    if (reader_a->data_bytes() != reader_b->data_bytes()) {
      return repro::failed_precondition(
          "checkpoints cover different data sizes");
    }

    auto open_one = [&](const std::filesystem::path& path)
        -> repro::Result<std::unique_ptr<io::IoBackend>> {
      auto result =
          io::open_backend(path, options.backend, options.backend_options);
      if (!result.is_ok() && options.backend_fallback &&
          result.status().code() == repro::StatusCode::kUnsupported) {
        return io::open_backend(path, io::BackendKind::kThreadAsync,
                                options.backend_options);
      }
      return result;
    };
    REPRO_ASSIGN_OR_RETURN(backend_a, open_one(checkpoint_a));
    REPRO_ASSIGN_OR_RETURN(backend_b, open_one(checkpoint_b));
  }
  report.data_bytes = reader_a->data_bytes();

  // Every chunk of the data section is on the worklist: Direct reads 100%.
  const std::uint64_t chunk_bytes =
      std::max<std::uint64_t>(options.stream.slice_bytes, 64 * 1024);
  const std::uint64_t num_chunks =
      report.data_bytes == 0
          ? 0
          : (report.data_bytes + chunk_bytes - 1) / chunk_bytes;
  std::vector<std::uint64_t> all_chunks(num_chunks);
  std::iota(all_chunks.begin(), all_chunks.end(), 0);

  // Interpret values like the tree would (homogeneous kind or bitwise).
  merkle::ValueKind kind = merkle::ValueKind::kBytes;
  if (!reader_a->info().fields.empty()) {
    kind = reader_a->info().fields.front().kind;
    for (const auto& field : reader_a->info().fields) {
      if (field.kind != kind) {
        kind = merkle::ValueKind::kBytes;
        break;
      }
    }
  }
  const std::uint32_t vsize = merkle::value_size(kind);

  {
    PhaseTimer timer(report.timers, cmp::kPhaseCompareDirect);

    io::StreamOptions stream_options = options.stream;
    stream_options.base_offset_a = reader_a->data_offset();
    stream_options.base_offset_b = reader_b->data_offset();

    io::PairedChunkStreamer streamer(*backend_a, *backend_b, chunk_bytes,
                                     report.data_bytes, all_chunks,
                                     stream_options);

    cmp::ElementwiseOptions element_options;
    element_options.exec = options.exec;
    element_options.collect_diffs = options.collect_diffs;
    element_options.max_diffs = options.max_diffs;
    element_options.dynamic_grain = options.dynamic_grain;

    std::vector<cmp::ElementDiff> raw_diffs;
    while (io::ChunkSlice* slice = streamer.next()) {
      for (const auto& placement : slice->placements) {
        const std::uint64_t base_value =
            placement.chunk * chunk_bytes / vsize;
        const auto result = cmp::compare_region(
            std::span<const std::uint8_t>(
                slice->data_a.data() + placement.buffer_offset,
                placement.length),
            std::span<const std::uint8_t>(
                slice->data_b.data() + placement.buffer_offset,
                placement.length),
            kind, options.error_bound, base_value, element_options,
            options.collect_diffs ? &raw_diffs : nullptr);
        report.values_compared += result.values_compared;
        report.values_exceeding += result.values_exceeding;
      }
    }
    REPRO_RETURN_IF_ERROR(streamer.status());
    report.bytes_read_per_file = streamer.bytes_read_per_file();

    if (options.collect_diffs) {
      // Same deterministic-sample contract as cmp::Comparator: the
      // max_diffs smallest value indices, ascending, regardless of the
      // dynamic schedule (compare_region already pruned to the smallest).
      std::sort(raw_diffs.begin(), raw_diffs.end(),
                [](const cmp::ElementDiff& a, const cmp::ElementDiff& b) {
                  return a.value_index < b.value_index;
                });
      for (const auto& raw : raw_diffs) {
        cmp::DiffRecord record;
        record.value_index = raw.value_index;
        record.value_a = raw.value_a;
        record.value_b = raw.value_b;
        const std::uint64_t byte_offset = raw.value_index * vsize;
        if (const auto* field = reader_a->info().field_at(byte_offset)) {
          record.field = field->name;
          record.element_index = (byte_offset - field->data_offset) / vsize;
        }
        report.diffs.push_back(std::move(record));
      }
    }
  }

  report.total_seconds = total.seconds();
  return report;
}

}  // namespace repro::baseline
