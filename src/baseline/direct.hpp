// The Direct baseline (Section 3.2.2): optimized pair-wise floating-point
// comparison.
//
// Unlike AllClose this is a serious competitor: it locates differences, is
// parallelized over the executor, and streams both files through the same
// asynchronous I/O machinery (io_uring et al.) as our method's stage 2.
// What it lacks is exactly the paper's contribution — the Merkle metadata
// that lets a comparison skip reading unchanged data. Direct always reads
// 100% of both checkpoints.
#pragma once

#include <cstdint>
#include <filesystem>

#include "common/status.hpp"
#include "compare/report.hpp"
#include "io/backend.hpp"
#include "io/stream.hpp"
#include "par/exec.hpp"

namespace repro::baseline {

struct DirectOptions {
  double error_bound = 1e-6;
  io::BackendKind backend = io::BackendKind::kUring;
  bool backend_fallback = true;
  io::BackendOptions backend_options;
  io::StreamOptions stream;
  par::Exec exec = par::Exec::parallel();
  bool collect_diffs = false;
  std::size_t max_diffs = 1024;
  bool evict_cache = false;
  /// Dynamic-scheduling grain (values per claim) for the element-wise
  /// comparison; 0 = auto. See docs/PERF.md.
  std::uint64_t dynamic_grain = 0;
};

/// Stream-compare the full data sections of two checkpoints. Returns a
/// CompareReport with the stage-1 fields zeroed (there is no metadata) and
/// every byte charged to compare_direct/read.
repro::Result<cmp::CompareReport> direct_compare(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b, const DirectOptions& options);

}  // namespace repro::baseline
