// The AllClose baseline (Section 3.2.1): NumPy-style whole-array closeness
// check, re-implemented with NumPy's exact semantics.
//
// This is "how a domain scientist may compare results": load both arrays in
// full (one monolithic read each, no streaming, no async I/O), test
// |a - b| <= atol + rtol * |b| element-wise, and report only *whether* the
// runs agree — not where they differ. The paper fixes rtol = 0 to isolate
// the absolute-bound comparison.
#pragma once

#include <cstdint>
#include <filesystem>

#include "common/status.hpp"
#include "compare/report.hpp"

namespace repro::baseline {

struct AllCloseOptions {
  double atol = 1e-6;
  double rtol = 0.0;
  /// Cold-cache protocol (vmtouch -e equivalent).
  bool evict_cache = false;
};

struct AllCloseReport {
  bool all_close = true;
  std::uint64_t values_compared = 0;
  std::uint64_t values_exceeding = 0;
  std::uint64_t data_bytes = 0;  ///< per run
  double total_seconds = 0;

  [[nodiscard]] double throughput_bytes_per_second() const noexcept {
    return total_seconds > 0
               ? 2.0 * static_cast<double>(data_bytes) / total_seconds
               : 0.0;
  }
};

/// Compare two checkpoints' data sections the NumPy way.
repro::Result<AllCloseReport> allclose_files(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b, const AllCloseOptions& options);

}  // namespace repro::baseline
