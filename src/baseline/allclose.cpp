#include "baseline/allclose.hpp"

#include <cmath>

#include "ckpt/format.hpp"
#include "common/fs.hpp"
#include "common/log.hpp"

namespace repro::baseline {

repro::Result<AllCloseReport> allclose_files(
    const std::filesystem::path& checkpoint_a,
    const std::filesystem::path& checkpoint_b,
    const AllCloseOptions& options) {
  if (options.evict_cache) {
    for (const auto& path : {checkpoint_a, checkpoint_b}) {
      const repro::Status status = repro::evict_page_cache(path);
      if (!status.is_ok()) {
        REPRO_LOG_WARN << "cache eviction failed: " << status.to_string();
      }
    }
  }

  Stopwatch total;
  AllCloseReport report;

  REPRO_ASSIGN_OR_RETURN(const ckpt::CheckpointReader reader_a,
                         ckpt::CheckpointReader::open(checkpoint_a));
  REPRO_ASSIGN_OR_RETURN(const ckpt::CheckpointReader reader_b,
                         ckpt::CheckpointReader::open(checkpoint_b));
  if (reader_a.data_bytes() != reader_b.data_bytes()) {
    return repro::failed_precondition(
        "checkpoints cover different data sizes");
  }
  report.data_bytes = reader_a.data_bytes();

  // Monolithic loads — the defining (and performance-limiting) property of
  // the numpy.allclose workflow.
  REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> data_a,
                         reader_a.read_data());
  REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> data_b,
                         reader_b.read_data());

  // Element-wise |a-b| <= atol + rtol*|b|, per field so mixed-kind
  // checkpoints are interpreted correctly. NaN anywhere => not close
  // (NumPy's default equal_nan=False).
  for (const auto& field : reader_a.info().fields) {
    const std::uint64_t offset = field.data_offset;
    const std::uint64_t count = field.element_count;
    auto close_pair = [&](double a, double b) {
      if (std::isnan(a) || std::isnan(b)) return false;
      return std::abs(a - b) <= options.atol + options.rtol * std::abs(b);
    };
    switch (field.kind) {
      case merkle::ValueKind::kF32: {
        const auto* va = reinterpret_cast<const float*>(data_a.data() + offset);
        const auto* vb = reinterpret_cast<const float*>(data_b.data() + offset);
        for (std::uint64_t i = 0; i < count; ++i) {
          if (!close_pair(va[i], vb[i])) ++report.values_exceeding;
        }
        break;
      }
      case merkle::ValueKind::kF64: {
        const auto* va =
            reinterpret_cast<const double*>(data_a.data() + offset);
        const auto* vb =
            reinterpret_cast<const double*>(data_b.data() + offset);
        for (std::uint64_t i = 0; i < count; ++i) {
          if (!close_pair(va[i], vb[i])) ++report.values_exceeding;
        }
        break;
      }
      case merkle::ValueKind::kBytes: {
        for (std::uint64_t i = 0; i < count; ++i) {
          if (data_a[offset + i] != data_b[offset + i]) {
            ++report.values_exceeding;
          }
        }
        break;
      }
    }
    report.values_compared += count;
  }

  report.all_close = report.values_exceeding == 0;
  report.total_seconds = total.seconds();
  return report;
}

}  // namespace repro::baseline
