// Minimal leveled logger. Thread-safe, writes to stderr, level settable at
// runtime (REPRO_LOG_LEVEL env var or set_log_level()). Bench harnesses keep
// stdout clean for tabular results and route diagnostics here.
#pragma once

#include <sstream>
#include <string_view>

namespace repro {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

namespace detail {

bool log_enabled(LogLevel level) noexcept;
void log_emit(LogLevel level, std::string_view message);

/// Stream-style one-shot log line; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace repro

#define REPRO_LOG(level)                                 \
  if (::repro::detail::log_enabled(::repro::LogLevel::level)) \
  ::repro::detail::LogLine(::repro::LogLevel::level)

#define REPRO_LOG_DEBUG REPRO_LOG(kDebug)
#define REPRO_LOG_INFO REPRO_LOG(kInfo)
#define REPRO_LOG_WARN REPRO_LOG(kWarn)
#define REPRO_LOG_ERROR REPRO_LOG(kError)
