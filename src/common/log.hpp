// Minimal leveled logger. Thread-safe, writes to stderr, level settable at
// runtime (REPRO_LOG_LEVEL env var or set_log_level()). Bench harnesses keep
// stdout clean for tabular results and route diagnostics here.
//
// Each line carries an ISO-8601 UTC timestamp (millisecond precision) and a
// small per-process thread id, so interleaved pool/producer output stays
// attributable. Two output formats:
//   text (default):  [2026-08-06T12:34:56.789Z repro INFO  tid=3] message
//   json  (REPRO_LOG_FORMAT=json or set_log_format(LogFormat::kJson)):
//     {"ts":"2026-08-06T12:34:56.789Z","level":"info","tid":3,"message":"..."}
// set_log_sink() redirects formatted lines away from stderr (tests, trace
// collectors); passing nullptr restores stderr.
#pragma once

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace repro {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

enum class LogFormat : int {
  kText = 0,
  kJson = 1,
};

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

void set_log_format(LogFormat format) noexcept;
LogFormat log_format() noexcept;

/// Receives each fully-formatted log line (no trailing newline) plus its
/// level. Replaces the stderr writer; pass nullptr to restore stderr.
/// The sink runs under the logger's mutex — keep it quick and do not log
/// from inside it.
using LogSink = std::function<void(LogLevel, std::string_view)>;
void set_log_sink(LogSink sink);

namespace detail {

bool log_enabled(LogLevel level) noexcept;
void log_emit(LogLevel level, std::string_view message);

/// Renders one line in the active format — exposed so tests can pin the
/// format down without scraping stderr.
std::string format_log_line(LogLevel level, std::string_view message);

/// Small sequential id of the calling thread (1-based, process-local).
unsigned log_thread_id() noexcept;

/// Stream-style one-shot log line; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace repro

#define REPRO_LOG(level)                                 \
  if (::repro::detail::log_enabled(::repro::LogLevel::level)) \
  ::repro::detail::LogLine(::repro::LogLevel::level)

#define REPRO_LOG_DEBUG REPRO_LOG(kDebug)
#define REPRO_LOG_INFO REPRO_LOG(kInfo)
#define REPRO_LOG_WARN REPRO_LOG(kWarn)
#define REPRO_LOG_ERROR REPRO_LOG(kError)
