#include "common/rng.hpp"

#include <cmath>

namespace repro {

double Xoshiro256::next_gaussian() noexcept {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);  // avoid log(0)
  const double u2 = next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  spare_ = radius * std::sin(angle);
  have_spare_ = true;
  return radius * std::cos(angle);
}

}  // namespace repro
