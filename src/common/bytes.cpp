#include "common/bytes.hpp"

#include <cctype>
#include <cstdio>

namespace repro {

Result<std::uint64_t> parse_size(std::string_view text) {
  if (text.empty()) return invalid_argument("empty size string");
  std::uint64_t value = 0;
  std::size_t pos = 0;
  bool saw_digit = false;
  while (pos < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[pos])) != 0) {
    const std::uint64_t digit = static_cast<std::uint64_t>(text[pos] - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return invalid_argument("size overflows u64: " + std::string{text});
    }
    value = value * 10 + digit;
    saw_digit = true;
    ++pos;
  }
  if (!saw_digit) {
    return invalid_argument("size must start with digits: " +
                            std::string{text});
  }
  std::uint64_t multiplier = 1;
  if (pos < text.size()) {
    switch (std::toupper(static_cast<unsigned char>(text[pos]))) {
      case 'K': multiplier = kKiB; break;
      case 'M': multiplier = kMiB; break;
      case 'G': multiplier = kGiB; break;
      case 'B': multiplier = 1; break;
      default:
        return invalid_argument("unknown size suffix in: " +
                                std::string{text});
    }
    ++pos;
    // Optional trailing 'B' / 'iB'.
    if (pos < text.size() &&
        std::toupper(static_cast<unsigned char>(text[pos])) == 'I') {
      ++pos;
    }
    if (pos < text.size() &&
        std::toupper(static_cast<unsigned char>(text[pos])) == 'B') {
      ++pos;
    }
    if (pos != text.size()) {
      return invalid_argument("trailing junk in size: " + std::string{text});
    }
  }
  if (multiplier != 1 && value > UINT64_MAX / multiplier) {
    return invalid_argument("size overflows u64: " + std::string{text});
  }
  return value * multiplier;
}

namespace {

std::string trim_decimal(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", value);
  std::string text{buf};
  while (!text.empty() && text.back() == '0') text.pop_back();
  if (!text.empty() && text.back() == '.') text.pop_back();
  return text;
}

}  // namespace

std::string format_size(std::uint64_t bytes) {
  if (bytes >= kGiB) {
    return trim_decimal(static_cast<double>(bytes) / static_cast<double>(kGiB)) + " GB";
  }
  if (bytes >= kMiB) {
    return trim_decimal(static_cast<double>(bytes) / static_cast<double>(kMiB)) + " MB";
  }
  if (bytes >= kKiB) {
    return trim_decimal(static_cast<double>(bytes) / static_cast<double>(kKiB)) + " KB";
  }
  return std::to_string(bytes) + " B";
}

std::string format_throughput(double bytes_per_second) {
  const double gib = static_cast<double>(kGiB);
  const double mib = static_cast<double>(kMiB);
  char buf[64];
  if (bytes_per_second >= gib) {
    std::snprintf(buf, sizeof buf, "%.2f GB/s", bytes_per_second / gib);
  } else if (bytes_per_second >= mib) {
    std::snprintf(buf, sizeof buf, "%.2f MB/s", bytes_per_second / mib);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f KB/s",
                  bytes_per_second / static_cast<double>(kKiB));
  }
  return std::string{buf};
}

}  // namespace repro
