// Wall-clock timing utilities.
//
// TimerSet mirrors the paper's Figure 6 instrumentation: named accumulating
// phase timers (setup / read / deserialization / compare-tree / compare-direct)
// that a comparison run charges as it moves through its stages.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace repro {

/// Monotonic wall clock returning seconds as double.
class WallClock {
 public:
  using clock = std::chrono::steady_clock;

  static clock::time_point now() noexcept { return clock::now(); }

  static double seconds_since(clock::time_point start) noexcept {
    return std::chrono::duration<double>(now() - start).count();
  }
};

/// Accumulates elapsed seconds under string keys. Not thread-safe by design:
/// each comparison pipeline owns one TimerSet; cross-rank aggregation merges
/// finished sets.
class TimerSet {
 public:
  /// Adds `seconds` to the named phase.
  void add(std::string_view name, double seconds);

  /// Total accumulated seconds for a phase (0 if never charged).
  [[nodiscard]] double seconds(std::string_view name) const;

  /// Sum over every phase.
  [[nodiscard]] double total_seconds() const;

  /// Phase names in insertion order.
  [[nodiscard]] const std::vector<std::string>& names() const {
    return order_;
  }

  /// Merge another set into this one (phase-wise sum). Phases new to this
  /// set keep the other set's relative insertion order; self-merge is a
  /// no-op.
  void merge(const TimerSet& other);

  void clear();

 private:
  std::map<std::string, double, std::less<>> phases_;
  std::vector<std::string> order_;
};

/// RAII timer charging a TimerSet phase on destruction (or stop()).
class PhaseTimer {
 public:
  PhaseTimer(TimerSet& set, std::string name)
      : set_(&set), name_(std::move(name)), start_(WallClock::now()) {}

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  ~PhaseTimer() { stop(); }

  /// Charge now; subsequent stops are no-ops.
  void stop() {
    if (set_ != nullptr) {
      set_->add(name_, WallClock::seconds_since(start_));
      set_ = nullptr;
    }
  }

 private:
  TimerSet* set_;
  std::string name_;
  WallClock::clock::time_point start_;
};

/// Simple stopwatch for benches.
class Stopwatch {
 public:
  Stopwatch() : start_(WallClock::now()) {}
  void reset() { start_ = WallClock::now(); }
  [[nodiscard]] double seconds() const {
    return WallClock::seconds_since(start_);
  }

 private:
  WallClock::clock::time_point start_;
};

}  // namespace repro
