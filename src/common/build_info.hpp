// Build provenance: which compiler, build type, library version, and SIMD
// dispatch level produced an artifact. Divergence verdicts are only
// attributable when the two sides' toolchains are known — a ledger or run
// report from machine A must say enough about its build for machine B to
// decide whether a mismatch is data or toolchain. Every RunReport and every
// divergence-ledger header embeds this block (docs/OBSERVABILITY.md).
#pragma once

#include <string>
#include <string_view>

namespace repro {

/// Library version, bumped with format-affecting releases.
inline constexpr std::string_view kLibraryVersion = "0.4.0";

struct BuildInfo {
  std::string compiler;    ///< e.g. "gcc 13.2.0" or "clang 17.0.6"
  std::string build_type;  ///< CMake build type ("RelWithDebInfo", ...)
  std::string version;     ///< kLibraryVersion
  /// Kernel implementation the SIMD dispatcher actually selected on this
  /// machine ("scalar", "sse2", "avx2", "avx512"); "unknown" until a
  /// component that links the hash kernels registers it.
  std::string simd_level;
};

/// Snapshot of the provenance for this process. compiler/build_type/version
/// come from compile-time macros; simd_level reflects the most recent
/// set_simd_dispatch_level() call.
[[nodiscard]] BuildInfo build_info();

/// Registers the runtime-dispatched kernel level. Called by the hash
/// kernels on first dispatch and by tools at startup; thread-safe.
void set_simd_dispatch_level(std::string_view level);

}  // namespace repro
