#include "common/log.hpp"

#include "common/json.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <string>
#include <utility>

namespace repro {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("REPRO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

LogFormat initial_format() {
  const char* env = std::getenv("REPRO_LOG_FORMAT");
  if (env != nullptr && std::strcmp(env, "json") == 0) return LogFormat::kJson;
  return LogFormat::kText;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

std::atomic<int>& format_store() {
  static std::atomic<int> format{static_cast<int>(initial_format())};
  return format;
}

std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

LogSink& sink_store() {
  static LogSink sink;
  return sink;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

const char* level_word(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "unknown";
}

/// ISO-8601 UTC with millisecond precision: 2026-08-06T12:34:56.789Z
std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto millis = std::chrono::duration_cast<std::chrono::milliseconds>(
                          now.time_since_epoch())
                          .count() %
                      1000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(millis));
  return buf;
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

void set_log_format(LogFormat format) noexcept {
  format_store().store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat log_format() noexcept {
  return static_cast<LogFormat>(
      format_store().load(std::memory_order_relaxed));
}

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  sink_store() = std::move(sink);
}

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         level_store().load(std::memory_order_relaxed);
}

unsigned log_thread_id() noexcept {
  static std::atomic<unsigned> next{1};
  thread_local const unsigned id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string format_log_line(LogLevel level, std::string_view message) {
  const std::string ts = iso8601_now();
  const unsigned tid = log_thread_id();
  std::string line;
  line.reserve(ts.size() + message.size() + 48);
  if (log_format() == LogFormat::kJson) {
    line += "{\"ts\":\"";
    line += ts;
    line += "\",\"level\":\"";
    line += level_word(level);
    line += "\",\"tid\":";
    line += std::to_string(tid);
    line += ",\"message\":\"";
    json_append_escaped(line, message);
    line += "\"}";
  } else {
    line += '[';
    line += ts;
    line += " repro ";
    line += level_tag(level);
    line += " tid=";
    line += std::to_string(tid);
    line += "] ";
    line += message;
  }
  return line;
}

void log_emit(LogLevel level, std::string_view message) {
  const std::string line = format_log_line(level, message);
  std::lock_guard<std::mutex> lock(sink_mutex());
  LogSink& sink = sink_store();
  if (sink) {
    sink(level, line);
    return;
  }
  std::fprintf(stderr, "%.*s\n", static_cast<int>(line.size()), line.data());
}

}  // namespace detail
}  // namespace repro
