#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace repro {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("REPRO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& level_store() {
  static std::atomic<int> level{static_cast<int>(initial_level())};
  return level;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  level_store().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(level_store().load(std::memory_order_relaxed));
}

namespace detail {

bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >=
         level_store().load(std::memory_order_relaxed);
}

void log_emit(LogLevel level, std::string_view message) {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[repro %s] %.*s\n", level_tag(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace repro
