#include "common/timer.hpp"

namespace repro {

void TimerSet::add(std::string_view name, double seconds) {
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    order_.emplace_back(name);
    phases_.emplace(std::string{name}, seconds);
  } else {
    it->second += seconds;
  }
}

double TimerSet::seconds(std::string_view name) const {
  auto it = phases_.find(name);
  return it == phases_.end() ? 0.0 : it->second;
}

double TimerSet::total_seconds() const {
  double total = 0.0;
  for (const auto& [name, secs] : phases_) total += secs;
  return total;
}

void TimerSet::merge(const TimerSet& other) {
  for (const auto& name : other.order_) {
    add(name, other.seconds(name));
  }
}

void TimerSet::clear() {
  phases_.clear();
  order_.clear();
}

}  // namespace repro
