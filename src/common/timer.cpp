#include "common/timer.hpp"

namespace repro {

void TimerSet::add(std::string_view name, double seconds) {
  auto it = phases_.find(name);
  if (it == phases_.end()) {
    order_.emplace_back(name);
    phases_.emplace(std::string{name}, seconds);
  } else {
    it->second += seconds;
  }
}

double TimerSet::seconds(std::string_view name) const {
  auto it = phases_.find(name);
  return it == phases_.end() ? 0.0 : it->second;
}

double TimerSet::total_seconds() const {
  double total = 0.0;
  for (const auto& [name, secs] : phases_) total += secs;
  return total;
}

void TimerSet::merge(const TimerSet& other) {
  // Walk other.order_ (not the map) so phases unknown to this set are
  // appended in the order the other set first saw them — report columns
  // stay in pipeline order instead of alphabetizing. Self-merge would
  // double every phase while iterating our own order vector; make it a
  // no-op instead.
  if (&other == this) return;
  for (const auto& name : other.order_) {
    add(name, other.seconds(name));
  }
}

void TimerSet::clear() {
  phases_.clear();
  order_.clear();
}

}  // namespace repro
