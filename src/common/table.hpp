// Column-aligned plain-text table printer used by every bench binary to emit
// rows in the layout of the paper's tables and figures.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace repro {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Render with single-space-padded columns and a dashed header rule.
  [[nodiscard]] std::string to_string() const;

  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace repro
