#include "common/status.hpp"

#include <cstring>

namespace repro {

std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kCorruptData: return "CORRUPT_DATA";
    case StatusCode::kUnsupported: return "UNSUPPORTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out{status_code_name(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status Status::with_context(std::string_view context) const {
  if (is_ok()) return *this;
  std::string msg{context};
  msg += ": ";
  msg += message_;
  return Status{code_, std::move(msg)};
}

Status invalid_argument(std::string message) {
  return Status{StatusCode::kInvalidArgument, std::move(message)};
}
Status not_found(std::string message) {
  return Status{StatusCode::kNotFound, std::move(message)};
}
Status already_exists(std::string message) {
  return Status{StatusCode::kAlreadyExists, std::move(message)};
}
Status out_of_range(std::string message) {
  return Status{StatusCode::kOutOfRange, std::move(message)};
}
Status failed_precondition(std::string message) {
  return Status{StatusCode::kFailedPrecondition, std::move(message)};
}
Status io_error(std::string message) {
  return Status{StatusCode::kIoError, std::move(message)};
}
Status io_error_errno(std::string message, int errno_value) {
  message += ": ";
  message += std::strerror(errno_value);
  return Status{StatusCode::kIoError, std::move(message)};
}
Status corrupt_data(std::string message) {
  return Status{StatusCode::kCorruptData, std::move(message)};
}
Status unsupported(std::string message) {
  return Status{StatusCode::kUnsupported, std::move(message)};
}
Status unavailable(std::string message) {
  return Status{StatusCode::kUnavailable, std::move(message)};
}
Status internal_error(std::string message) {
  return Status{StatusCode::kInternal, std::move(message)};
}

}  // namespace repro
