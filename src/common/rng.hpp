// Deterministic, seedable random number generation.
//
// Reproducibility experiments need bit-stable pseudo-randomness across
// platforms, so we avoid std::mt19937 distribution differences and ship
// splitmix64 (seeding) + xoshiro256** (bulk generation), both with published
// reference outputs we test against.
#pragma once

#include <array>
#include <cstdint>

namespace repro {

/// splitmix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator (Blackman & Vigna).
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 mix(seed);
    for (auto& word : state_) word = mix.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() noexcept {
    return static_cast<float>(next() >> 40) * 0x1.0p-24f;
  }

  /// Uniform integer in [0, bound) (bound > 0). Uses Lemire's method.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the distribution unbiased enough for workload
    // generation (we accept the tiny modulo bias of the fast path).
    __uint128_t product = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  /// Standard normal via Box-Muller (deterministic, branch-stable).
  double next_gaussian() noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace repro
