// Byte-size parsing/formatting and small binary (de)serialization helpers
// shared by the checkpoint format and Merkle metadata codecs.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace repro {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Parse "4096", "4K", "4KB", "2M", "1G" (case-insensitive, binary units).
Result<std::uint64_t> parse_size(std::string_view text);

/// "4 KB", "1.5 MB", "28 GB" — binary units, trimmed to <= 2 decimals.
std::string format_size(std::uint64_t bytes);

/// "12.34 GB/s" style throughput string.
std::string format_throughput(double bytes_per_second);

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Round `value` up to the next power of two. Values above 2^63 (which has
/// no representable successor) saturate to 2^63 — callers that can receive
/// untrusted sizes must range-check first (the metadata codecs do).
constexpr std::uint64_t next_pow2(std::uint64_t value) noexcept {
  if (value <= 1) return 1;
  if (value > (std::uint64_t{1} << 63)) return std::uint64_t{1} << 63;
  return std::uint64_t{1} << (64 - __builtin_clzll(value - 1));
}

constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Append-only little-endian binary encoder.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_.push_back(v); }

  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
  }

  /// Length-prefixed (u32) string.
  void put_string(std::string_view text) {
    put_u32(static_cast<std::uint32_t>(text.size()));
    const auto* data = reinterpret_cast<const std::uint8_t*>(text.data());
    out_.insert(out_.end(), data, data + text.size());
  }

 private:
  void put_raw(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), bytes, bytes + size);
  }

  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked little-endian binary decoder.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  Result<std::uint8_t> get_u8() {
    if (remaining() < 1) return short_read();
    return data_[pos_++];
  }

  Result<std::uint32_t> get_u32() { return get_raw<std::uint32_t>(); }
  Result<std::uint64_t> get_u64() { return get_raw<std::uint64_t>(); }
  Result<double> get_f64() { return get_raw<double>(); }

  Status get_bytes(std::span<std::uint8_t> out) {
    if (remaining() < out.size()) return short_read_status();
    std::memcpy(out.data(), data_.data() + pos_, out.size());
    pos_ += out.size();
    return Status::ok();
  }

  Result<std::string> get_string() {
    auto len = get_u32();
    if (!len.is_ok()) return len.status();
    if (remaining() < len.value()) return Result<std::string>(short_read_status());
    std::string text(reinterpret_cast<const char*>(data_.data() + pos_),
                     len.value());
    pos_ += len.value();
    return text;
  }

 private:
  template <typename T>
  Result<T> get_raw() {
    if (remaining() < sizeof(T)) return Result<T>(short_read_status());
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  static Status short_read_status() {
    return corrupt_data("short read while decoding binary payload");
  }
  Result<std::uint8_t> short_read() { return short_read_status(); }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace repro
