// Lightweight Status / Result error-handling vocabulary used across reprokit.
//
// The comparison runtime is I/O-heavy, and most failures (missing checkpoint,
// short read, corrupt metadata) are expected conditions the caller must be
// able to branch on, so we use value-returned status objects rather than
// exceptions on those paths. Programming errors still use assertions.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace repro {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kCorruptData,
  kUnsupported,
  /// Transient failure (interrupted syscall, injected fault, flaky device):
  /// the operation may succeed if retried. Retry loops branch on this code;
  /// everything else is treated as permanent.
  kUnavailable,
  kInternal,
};

/// Human-readable name of a status code, e.g. "IO_ERROR".
std::string_view status_code_name(StatusCode code) noexcept;

/// A success-or-error value. Cheap to copy on the success path (no message
/// allocation); errors carry a code and a contextual message.
class Status {
 public:
  Status() noexcept = default;  // OK

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() noexcept { return Status{}; }

  [[nodiscard]] bool is_ok() const noexcept { return code_ == StatusCode::kOk; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] StatusCode code() const noexcept { return code_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "OK" or "<CODE>: <message>".
  [[nodiscard]] std::string to_string() const;

  /// Returns a copy of this status with `context` prepended to the message.
  [[nodiscard]] Status with_context(std::string_view context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status invalid_argument(std::string message);
Status not_found(std::string message);
Status already_exists(std::string message);
Status out_of_range(std::string message);
Status failed_precondition(std::string message);
Status io_error(std::string message);
/// io_error with strerror(errno_value) appended.
Status io_error_errno(std::string message, int errno_value);
Status corrupt_data(std::string message);
Status unsupported(std::string message);
Status unavailable(std::string message);
Status internal_error(std::string message);

/// Result<T>: either a value or an error Status. Minimal std::expected
/// stand-in (libstdc++ 12 does not ship <expected>).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool is_ok() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return is_ok(); }

  /// Error status; OK when the result holds a value.
  [[nodiscard]] const Status& status() const noexcept { return status_; }

  [[nodiscard]] T& value() & { return *value_; }
  [[nodiscard]] const T& value() const& { return *value_; }
  [[nodiscard]] T&& value() && { return *std::move(value_); }

  [[nodiscard]] T value_or(T fallback) const& {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace repro

/// Propagate an error Status from an expression that yields a Status.
#define REPRO_RETURN_IF_ERROR(expr)                   \
  do {                                                \
    ::repro::Status _repro_status = (expr);           \
    if (!_repro_status.is_ok()) return _repro_status; \
  } while (false)

#define REPRO_DETAIL_CONCAT_INNER(a, b) a##b
#define REPRO_DETAIL_CONCAT(a, b) REPRO_DETAIL_CONCAT_INNER(a, b)

#define REPRO_DETAIL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.is_ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

/// Evaluate an expression yielding Result<T>; on success bind the value to
/// `lhs` (which may declare a new variable), otherwise return the error
/// Status.
#define REPRO_ASSIGN_OR_RETURN(lhs, expr)                                  \
  REPRO_DETAIL_ASSIGN_OR_RETURN(                                           \
      REPRO_DETAIL_CONCAT(_repro_result_, __LINE__), lhs, expr)
