#include "common/table.hpp"

#include <cstdarg>
#include <algorithm>

namespace repro {

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += cell;
      if (c + 1 < widths.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  std::size_t rule_width = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule_width, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TextTable::print(std::FILE* out) const {
  const std::string text = to_string();
  std::fwrite(text.data(), 1, text.size(), out);
}

std::string strprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace repro
