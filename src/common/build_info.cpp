#include "common/build_info.hpp"

#include <cstdio>
#include <mutex>

namespace repro {

namespace {

std::mutex g_simd_mu;
std::string& simd_level_storage() {
  static std::string* level = new std::string("unknown");
  return *level;
}

std::string compiler_id() {
  char buf[64];
#if defined(__clang__)
  std::snprintf(buf, sizeof buf, "clang %d.%d.%d", __clang_major__,
                __clang_minor__, __clang_patchlevel__);
#elif defined(__GNUC__)
  std::snprintf(buf, sizeof buf, "gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                __GNUC_PATCHLEVEL__);
#else
  std::snprintf(buf, sizeof buf, "unknown");
#endif
  return buf;
}

}  // namespace

BuildInfo build_info() {
  BuildInfo info;
  info.compiler = compiler_id();
#if defined(REPRO_BUILD_TYPE)
  info.build_type = REPRO_BUILD_TYPE;
#else
  info.build_type = "unspecified";
#endif
  info.version = std::string{kLibraryVersion};
  {
    std::lock_guard<std::mutex> lock(g_simd_mu);
    info.simd_level = simd_level_storage();
  }
  return info;
}

void set_simd_dispatch_level(std::string_view level) {
  std::lock_guard<std::mutex> lock(g_simd_mu);
  simd_level_storage().assign(level);
}

}  // namespace repro
