#include "common/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <mutex>
#include <random>

#include "common/log.hpp"

namespace repro {

namespace {

/// RAII fd wrapper local to this translation unit.
class Fd {
 public:
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

std::mutex g_publish_failure_mu;
unsigned g_fail_next_publishes = 0;
std::string g_fail_publish_substring;

/// Consume one forced publish failure if armed and `path` matches.
bool consume_forced_publish_failure(const std::filesystem::path& path) {
  std::lock_guard<std::mutex> lock(g_publish_failure_mu);
  if (g_fail_next_publishes == 0) return false;
  if (!g_fail_publish_substring.empty() &&
      path.string().find(g_fail_publish_substring) == std::string::npos) {
    return false;
  }
  --g_fail_next_publishes;
  return true;
}

Status write_all(int fd, const std::filesystem::path& path,
                 std::span<const std::uint8_t> data) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error_errno("write: " + path.string(), errno);
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

/// Same-directory temp name for publishing `path`. The prefix is filtered
/// out by every catalog scan (they match on final suffixes like ".ckpt"),
/// so a crash-orphaned temp file is invisible to readers.
std::filesystem::path temp_sibling(const std::filesystem::path& path) {
  static std::atomic<std::uint64_t> counter{0};
  return path.parent_path() /
         (path.filename().string() + ".tmp-" + std::to_string(::getpid()) +
          "-" + std::to_string(counter.fetch_add(1)));
}

/// fsync the temp file, rename it over `path`, and fsync the parent
/// directory so the rename itself survives a crash.
Status publish_temp(int temp_fd, const std::filesystem::path& temp,
                    const std::filesystem::path& path) {
  if (::fsync(temp_fd) != 0) {
    return io_error_errno("fsync: " + temp.string(), errno);
  }
  if (consume_forced_publish_failure(path)) {
    return io_error("publish aborted before rename (testing hook): " +
                    path.string());
  }
  if (::rename(temp.c_str(), path.c_str()) != 0) {
    return io_error_errno(
        "rename: " + temp.string() + " -> " + path.string(), errno);
  }
  // Best-effort: some filesystems refuse O_RDONLY fsync on directories.
  Fd dir(::open(path.parent_path().c_str(), O_RDONLY | O_DIRECTORY));
  if (dir.ok()) ::fsync(dir.get());
  return Status::ok();
}

/// Removes the temp file if publish failed partway (not on the simulated
/// crash path, which must leave the orphan behind like a real crash).
void unlink_quiet(const std::filesystem::path& temp) {
  std::error_code ec;
  std::filesystem::remove(temp, ec);
}

}  // namespace

Status write_file(const std::filesystem::path& path,
                  std::span<const std::uint8_t> data) {
  const std::filesystem::path temp = temp_sibling(path);
  Fd fd(::open(temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644));
  if (!fd.ok()) {
    return io_error_errno("open for write: " + temp.string(), errno);
  }
  Status status = write_all(fd.get(), temp, data);
  if (status.is_ok()) status = publish_temp(fd.get(), temp, path);
  if (!status.is_ok() &&
      status.message().find("testing hook") == std::string::npos) {
    unlink_quiet(temp);
  }
  return status;
}

Status copy_file_atomic(const std::filesystem::path& src,
                        const std::filesystem::path& dst) {
  Fd in(::open(src.c_str(), O_RDONLY));
  if (!in.ok()) {
    return io_error_errno("open for read: " + src.string(), errno);
  }
  const std::filesystem::path temp = temp_sibling(dst);
  Fd out(::open(temp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644));
  if (!out.ok()) {
    return io_error_errno("open for write: " + temp.string(), errno);
  }
  std::vector<std::uint8_t> buffer(1U << 20);
  while (true) {
    const ssize_t n = ::read(in.get(), buffer.data(), buffer.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      unlink_quiet(temp);
      return io_error_errno("read: " + src.string(), errno);
    }
    if (n == 0) break;
    Status status = write_all(
        out.get(), temp,
        std::span<const std::uint8_t>(buffer.data(),
                                      static_cast<std::size_t>(n)));
    if (!status.is_ok()) {
      unlink_quiet(temp);
      return status;
    }
  }
  Status status = publish_temp(out.get(), temp, dst);
  if (!status.is_ok() &&
      status.message().find("testing hook") == std::string::npos) {
    unlink_quiet(temp);
  }
  return status;
}

void set_fail_next_publishes_for_testing(unsigned count,
                                         std::string path_substring) {
  std::lock_guard<std::mutex> lock(g_publish_failure_mu);
  g_fail_next_publishes = count;
  g_fail_publish_substring = std::move(path_substring);
}

Result<std::vector<std::uint8_t>> read_file(
    const std::filesystem::path& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.ok()) {
    return io_error_errno("open for read: " + path.string(), errno);
  }
  const off_t end = ::lseek(fd.get(), 0, SEEK_END);
  if (end < 0) return io_error_errno("lseek: " + path.string(), errno);
  if (::lseek(fd.get(), 0, SEEK_SET) < 0) {
    return io_error_errno("lseek: " + path.string(), errno);
  }
  std::vector<std::uint8_t> data(static_cast<std::size_t>(end));
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::read(fd.get(), data.data() + got, data.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error_errno("read: " + path.string(), errno);
    }
    if (n == 0) {
      return io_error("unexpected EOF reading " + path.string());
    }
    got += static_cast<std::size_t>(n);
  }
  return data;
}

Result<std::uint64_t> file_size(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return io_error("stat: " + path.string() + ": " + ec.message());
  return static_cast<std::uint64_t>(size);
}

Status evict_page_cache(const std::filesystem::path& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.ok()) {
    return io_error_errno("open for eviction: " + path.string(), errno);
  }
  // Dirty pages are not dropped by DONTNEED, so flush first.
  if (::fdatasync(fd.get()) != 0) {
    return io_error_errno("fdatasync: " + path.string(), errno);
  }
  if (::posix_fadvise(fd.get(), 0, 0, POSIX_FADV_DONTNEED) != 0) {
    return io_error("posix_fadvise(DONTNEED) failed for " + path.string());
  }
  return Status::ok();
}

TempDir::TempDir(std::string_view tag) {
  static std::atomic<std::uint64_t> counter{0};
  std::random_device rd;
  const std::uint64_t nonce =
      (static_cast<std::uint64_t>(rd()) << 32) ^ counter.fetch_add(1);
  path_ = std::filesystem::temp_directory_path() /
          (std::string{tag} + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(nonce));
  std::filesystem::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  if (ec) {
    REPRO_LOG_WARN << "failed to remove temp dir " << path_.string() << ": "
                   << ec.message();
  }
}

}  // namespace repro
