#include "common/fs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <random>

#include "common/log.hpp"

namespace repro {

namespace {

/// RAII fd wrapper local to this translation unit.
class Fd {
 public:
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }

 private:
  int fd_;
};

}  // namespace

Status write_file(const std::filesystem::path& path,
                  std::span<const std::uint8_t> data) {
  Fd fd(::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  if (!fd.ok()) {
    return io_error_errno("open for write: " + path.string(), errno);
  }
  std::size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd.get(), data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error_errno("write: " + path.string(), errno);
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::ok();
}

Result<std::vector<std::uint8_t>> read_file(
    const std::filesystem::path& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.ok()) {
    return io_error_errno("open for read: " + path.string(), errno);
  }
  const off_t end = ::lseek(fd.get(), 0, SEEK_END);
  if (end < 0) return io_error_errno("lseek: " + path.string(), errno);
  if (::lseek(fd.get(), 0, SEEK_SET) < 0) {
    return io_error_errno("lseek: " + path.string(), errno);
  }
  std::vector<std::uint8_t> data(static_cast<std::size_t>(end));
  std::size_t got = 0;
  while (got < data.size()) {
    const ssize_t n = ::read(fd.get(), data.data() + got, data.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return io_error_errno("read: " + path.string(), errno);
    }
    if (n == 0) {
      return io_error("unexpected EOF reading " + path.string());
    }
    got += static_cast<std::size_t>(n);
  }
  return data;
}

Result<std::uint64_t> file_size(const std::filesystem::path& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) return io_error("stat: " + path.string() + ": " + ec.message());
  return static_cast<std::uint64_t>(size);
}

Status evict_page_cache(const std::filesystem::path& path) {
  Fd fd(::open(path.c_str(), O_RDONLY));
  if (!fd.ok()) {
    return io_error_errno("open for eviction: " + path.string(), errno);
  }
  // Dirty pages are not dropped by DONTNEED, so flush first.
  if (::fdatasync(fd.get()) != 0) {
    return io_error_errno("fdatasync: " + path.string(), errno);
  }
  if (::posix_fadvise(fd.get(), 0, 0, POSIX_FADV_DONTNEED) != 0) {
    return io_error("posix_fadvise(DONTNEED) failed for " + path.string());
  }
  return Status::ok();
}

TempDir::TempDir(std::string_view tag) {
  static std::atomic<std::uint64_t> counter{0};
  std::random_device rd;
  const std::uint64_t nonce =
      (static_cast<std::uint64_t>(rd()) << 32) ^ counter.fetch_add(1);
  path_ = std::filesystem::temp_directory_path() /
          (std::string{tag} + "-" + std::to_string(::getpid()) + "-" +
           std::to_string(nonce));
  std::filesystem::create_directories(path_);
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);
  if (ec) {
    REPRO_LOG_WARN << "failed to remove temp dir " << path_.string() << ": "
                   << ec.message();
  }
}

}  // namespace repro
