// Minimal JSON emission helpers shared by every writer that hand-rolls JSON:
// telemetry (metrics snapshots, Chrome trace events, run reports), the
// divergence ledger, structured log lines, and the service wire protocol.
// Emission only — the matching parser lives in telemetry/json_parse.hpp.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace repro {

/// Appends `text` to `out` with JSON string escaping (quotes, backslash,
/// control characters). Does not add the surrounding quotes.
inline void json_append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Appends a quoted, escaped JSON string.
inline void json_append_string(std::string& out, std::string_view text) {
  out += '"';
  json_append_escaped(out, text);
  out += '"';
}

/// Appends a number. Integers in the double-exact range print without a
/// fractional part so counters round-trip as integers; NaN/Inf (not
/// representable in JSON) degrade to 0.
inline void json_append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += '0';
    return;
  }
  constexpr double kExactIntLimit = 9007199254740992.0;  // 2^53
  if (value == std::floor(value) && std::fabs(value) < kExactIntLimit) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  out += buf;
}

inline void json_append_number(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace repro
