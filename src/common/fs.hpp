// Filesystem helpers: whole-file read/write, unique temp directories for
// tests/benches, and page-cache eviction (the vmtouch -e equivalent the paper
// uses between cold-cache measurements).
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace repro {

/// Write the whole buffer to `path`, crash-consistently: the bytes go to a
/// same-directory temp file which is fsync'd and atomically renamed over
/// `path` (then the directory entry is made durable too). A reader — or a
/// restart after a crash at any point — sees either the old content or the
/// complete new content, never a torn prefix. Parent dir must exist.
Status write_file(const std::filesystem::path& path,
                  std::span<const std::uint8_t> data);

/// Copy `src` to `dst` with the same temp + fsync + rename publish protocol
/// as write_file, streaming in bounded buffers (no whole-file allocation).
Status copy_file_atomic(const std::filesystem::path& src,
                        const std::filesystem::path& dst);

/// Test-only: make the next `count` atomic publishes (write_file /
/// copy_file_atomic) fail *after* the temp file is written but *before* the
/// rename — simulating a crash mid-publish. The orphaned temp file is left
/// behind, as a real crash would leave it. A non-empty `path_substring`
/// restricts the failures to destinations containing it (so a test can
/// crash the PFS flush without tripping unrelated writes).
void set_fail_next_publishes_for_testing(unsigned count,
                                         std::string path_substring = "");

/// Read the whole file into a byte vector.
Result<std::vector<std::uint8_t>> read_file(const std::filesystem::path& path);

/// File size in bytes.
Result<std::uint64_t> file_size(const std::filesystem::path& path);

/// Drop `path`'s pages from the OS page cache (POSIX_FADV_DONTNEED after
/// fsync) so a following read is cold, mirroring the paper's `vmtouch -e`.
Status evict_page_cache(const std::filesystem::path& path);

/// Creates a unique directory under the system temp dir and removes it (and
/// everything inside) on destruction. Used by tests and benches.
class TempDir {
 public:
  /// `tag` is embedded in the directory name for debuggability.
  explicit TempDir(std::string_view tag = "reprokit");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const { return path_; }

  /// path() / relative.
  [[nodiscard]] std::filesystem::path file(std::string_view relative) const {
    return path_ / relative;
  }

 private:
  std::filesystem::path path_;
};

}  // namespace repro
