// Flat-array complete-binary-tree layout (Section 2.5.1).
//
// The paper stores Merkle trees as a flattened array because the tree shape
// never changes after construction and array indexing gives the GPU-friendly
// access pattern. We pad the leaf count to the next power of two so every
// leaf sits on one level and the parent/child arithmetic stays branch-free;
// padding leaves carry a fixed sentinel digest, identical in both runs'
// trees, so the BFS prunes them on the first touch.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace repro::merkle {

struct TreeLayout {
  std::uint64_t num_leaves = 0;     ///< real chunks
  std::uint64_t padded_leaves = 0;  ///< next_pow2(num_leaves)
  std::uint32_t depth = 0;          ///< leaves live on this level; root = 0

  static TreeLayout for_leaves(std::uint64_t num_leaves) noexcept {
    TreeLayout layout;
    layout.num_leaves = num_leaves;
    layout.padded_leaves = repro::next_pow2(num_leaves == 0 ? 1 : num_leaves);
    layout.depth = 0;
    while ((std::uint64_t{1} << layout.depth) < layout.padded_leaves) {
      ++layout.depth;
    }
    return layout;
  }

  [[nodiscard]] std::uint64_t num_nodes() const noexcept {
    return 2 * padded_leaves - 1;
  }

  /// First node index of `level` (root = level 0).
  [[nodiscard]] static std::uint64_t level_begin(std::uint32_t level) noexcept {
    return (std::uint64_t{1} << level) - 1;
  }
  /// One past the last node index of `level`.
  [[nodiscard]] static std::uint64_t level_end(std::uint32_t level) noexcept {
    return (std::uint64_t{1} << (level + 1)) - 1;
  }

  [[nodiscard]] static std::uint64_t parent(std::uint64_t node) noexcept {
    return (node - 1) / 2;
  }
  [[nodiscard]] static std::uint64_t left_child(std::uint64_t node) noexcept {
    return 2 * node + 1;
  }
  [[nodiscard]] static std::uint64_t right_child(std::uint64_t node) noexcept {
    return 2 * node + 2;
  }

  /// Node index of leaf `i` (i < padded_leaves).
  [[nodiscard]] std::uint64_t leaf_node(std::uint64_t leaf) const noexcept {
    return padded_leaves - 1 + leaf;
  }
  /// Leaf index of a node on the deepest level.
  [[nodiscard]] std::uint64_t node_leaf(std::uint64_t node) const noexcept {
    return node - (padded_leaves - 1);
  }
  [[nodiscard]] bool is_leaf_node(std::uint64_t node) const noexcept {
    return node >= padded_leaves - 1;
  }
};

}  // namespace repro::merkle
