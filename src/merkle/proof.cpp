#include "merkle/proof.hpp"

#include "common/bytes.hpp"
#include "hash/chunk_hasher.hpp"
#include "hash/murmur3.hpp"

namespace repro::merkle {

namespace {
constexpr std::uint32_t kMagic = 0x46505252;  // "RRPF"

/// Sibling of a non-root node in the flat layout.
std::uint64_t sibling_of(std::uint64_t node) noexcept {
  return node % 2 == 1 ? node + 1 : node - 1;  // left child is odd
}

hash::Digest128 hash_pair(const hash::Digest128& left,
                          const hash::Digest128& right) {
  hash::Digest128 pair[2] = {left, right};
  return hash::murmur3f(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(pair), sizeof pair));
}

}  // namespace

std::vector<std::uint8_t> InclusionProof::serialize() const {
  std::vector<std::uint8_t> out;
  ByteWriter writer(out);
  writer.put_u32(kMagic);
  writer.put_u64(chunk);
  writer.put_u64(num_leaves);
  writer.put_u64(leaf.lo);
  writer.put_u64(leaf.hi);
  writer.put_u32(static_cast<std::uint32_t>(siblings.size()));
  for (const auto& digest : siblings) {
    writer.put_u64(digest.lo);
    writer.put_u64(digest.hi);
  }
  return out;
}

repro::Result<InclusionProof> InclusionProof::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.get_u32());
  if (magic != kMagic) return repro::corrupt_data("bad proof magic");
  InclusionProof proof;
  REPRO_ASSIGN_OR_RETURN(proof.chunk, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(proof.num_leaves, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(proof.leaf.lo, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(proof.leaf.hi, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t count, reader.get_u32());
  if (count > 64) return repro::corrupt_data("proof depth impossible");
  proof.siblings.resize(count);
  for (auto& digest : proof.siblings) {
    REPRO_ASSIGN_OR_RETURN(digest.lo, reader.get_u64());
    REPRO_ASSIGN_OR_RETURN(digest.hi, reader.get_u64());
  }
  return proof;
}

repro::Result<InclusionProof> prove_inclusion(const MerkleTree& tree,
                                              std::uint64_t chunk) {
  const TreeLayout& layout = tree.layout();
  if (chunk >= layout.num_leaves) {
    return repro::out_of_range("chunk " + std::to_string(chunk) +
                               " outside tree with " +
                               std::to_string(layout.num_leaves) + " chunks");
  }
  InclusionProof proof;
  proof.chunk = chunk;
  proof.num_leaves = layout.num_leaves;
  proof.leaf = tree.leaf(chunk);
  std::uint64_t node = layout.leaf_node(chunk);
  while (node != 0) {
    proof.siblings.push_back(tree.node(sibling_of(node)));
    node = TreeLayout::parent(node);
  }
  return proof;
}

repro::Status verify_inclusion(const InclusionProof& proof,
                               const hash::Digest128& expected_root) {
  const TreeLayout layout = TreeLayout::for_leaves(proof.num_leaves);
  if (proof.chunk >= layout.num_leaves) {
    return repro::invalid_argument("proof chunk outside its own tree");
  }
  if (proof.siblings.size() != layout.depth) {
    return repro::invalid_argument(
        "proof has " + std::to_string(proof.siblings.size()) +
        " siblings; tree depth is " + std::to_string(layout.depth));
  }

  hash::Digest128 current = proof.leaf;
  std::uint64_t node = layout.leaf_node(proof.chunk);
  for (const hash::Digest128& sibling : proof.siblings) {
    // Left children have odd indices in the 0-rooted flat layout.
    current = node % 2 == 1 ? hash_pair(current, sibling)
                            : hash_pair(sibling, current);
    node = TreeLayout::parent(node);
  }
  if (current != expected_root) {
    return repro::failed_precondition(
        "recomputed root " + current.hex() + " does not match expected " +
        expected_root.hex());
  }
  return repro::Status::ok();
}

repro::Status verify_chunk_data(const InclusionProof& proof,
                                std::span<const std::uint8_t> chunk_data,
                                const TreeParams& params,
                                const hash::Digest128& expected_root) {
  REPRO_RETURN_IF_ERROR(validate(params));
  hash::Digest128 digest;
  switch (params.value_kind) {
    case ValueKind::kF32:
      digest = hash::hash_chunk_f32(
          std::span<const float>(
              reinterpret_cast<const float*>(chunk_data.data()),
              chunk_data.size() / sizeof(float)),
          params.hash);
      break;
    case ValueKind::kF64:
      digest = hash::hash_chunk_f64(
          std::span<const double>(
              reinterpret_cast<const double*>(chunk_data.data()),
              chunk_data.size() / sizeof(double)),
          params.hash);
      break;
    case ValueKind::kBytes:
      digest =
          hash::hash_chunk_bytes(chunk_data, params.hash.values_per_block * 4);
      break;
  }
  if (digest != proof.leaf) {
    return repro::failed_precondition(
        "chunk data hashes to " + digest.hex() +
        " but the proof's leaf is " + proof.leaf.hex());
  }
  return verify_inclusion(proof, expected_root);
}

}  // namespace repro::merkle
