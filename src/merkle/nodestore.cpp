#include "merkle/nodestore.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace repro::merkle {

namespace {

// A hostile file could name a long (or cyclic, if base >= iteration were
// allowed) chain; the decoder enforces strictly decreasing base iterations,
// so this cap only bounds pathological-but-valid chains.
constexpr std::uint64_t kMaxChainHops = 4096;

std::filesystem::path sibling_sidecar(const std::filesystem::path& path,
                                      std::uint64_t iteration) {
  return path.parent_path() /
         ("iter" + std::to_string(iteration) + ".rmrk");
}

}  // namespace

bool NodeStore::insert(const hash::Digest128& digest) {
  ++stats_.inserts;
  ++stats_.total_refs;
  auto [it, fresh] = refs_.try_emplace(digest, 0);
  ++it->second;
  if (fresh) {
    ++stats_.unique_nodes;
  } else {
    ++stats_.deduped;
  }
  return fresh;
}

std::uint64_t NodeStore::insert_all(
    std::span<const hash::Digest128> digests) {
  std::uint64_t fresh = 0;
  for (const hash::Digest128& digest : digests) {
    fresh += insert(digest) ? 1 : 0;
  }
  return fresh;
}

bool NodeStore::release(const hash::Digest128& digest) {
  auto it = refs_.find(digest);
  if (it == refs_.end()) return false;
  --stats_.total_refs;
  if (--it->second == 0) {
    refs_.erase(it);
    --stats_.unique_nodes;
    return true;
  }
  return false;
}

std::uint64_t NodeStore::refcount(const hash::Digest128& digest) const {
  auto it = refs_.find(digest);
  return it == refs_.end() ? 0 : it->second;
}

std::vector<std::uint64_t> dirty_node_indices(
    const TreeLayout& layout, std::span<const std::uint64_t> changed_chunks) {
  std::vector<std::uint64_t> dirty;
  dirty.reserve(changed_chunks.size() * (layout.depth + 1));
  for (const std::uint64_t chunk : changed_chunks) {
    std::uint64_t node = layout.leaf_node(chunk);
    dirty.push_back(node);
    while (node != 0) {
      node = TreeLayout::parent(node);
      dirty.push_back(node);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

namespace {

repro::Status check_delta_pair(const MerkleTree& base, const MerkleTree& next,
                               std::uint64_t base_iteration,
                               std::uint64_t iteration) {
  if (base_iteration >= iteration) {
    return repro::failed_precondition(
        "tree delta base_iteration must precede iteration");
  }
  if (base.layout().num_leaves != next.layout().num_leaves) {
    return repro::failed_precondition(
        "tree delta requires matching leaf counts");
  }
  if (!(base.params() == next.params())) {
    return repro::failed_precondition(
        "tree delta requires matching tree params");
  }
  return repro::Status::ok();
}

TreeDelta delta_shell(const MerkleTree& next, std::uint64_t base_iteration,
                      std::uint64_t iteration) {
  TreeDelta delta;
  delta.iteration = iteration;
  delta.base_iteration = base_iteration;
  delta.params = next.params();
  delta.data_bytes = next.data_bytes();
  delta.num_leaves = next.layout().num_leaves;
  return delta;
}

}  // namespace

repro::Result<TreeDelta> compute_tree_delta(const MerkleTree& base,
                                            const MerkleTree& next,
                                            std::uint64_t base_iteration,
                                            std::uint64_t iteration) {
  REPRO_RETURN_IF_ERROR(
      check_delta_pair(base, next, base_iteration, iteration));
  TreeDelta delta = delta_shell(next, base_iteration, iteration);
  const std::span<const hash::Digest128> old_nodes = base.nodes();
  const std::span<const hash::Digest128> new_nodes = next.nodes();
  for (std::uint64_t i = 0; i < new_nodes.size(); ++i) {
    if (!(old_nodes[i] == new_nodes[i])) {
      delta.nodes.push_back({i, new_nodes[i]});
    }
  }
  return delta;
}

repro::Result<TreeDelta> compute_tree_delta(
    const MerkleTree& base, const MerkleTree& next,
    std::span<const std::uint64_t> candidates, std::uint64_t base_iteration,
    std::uint64_t iteration) {
  REPRO_RETURN_IF_ERROR(
      check_delta_pair(base, next, base_iteration, iteration));
  TreeDelta delta = delta_shell(next, base_iteration, iteration);
  for (const std::uint64_t index : candidates) {
    if (index >= next.nodes().size()) {
      return repro::failed_precondition(
          "delta candidate index exceeds tree node count");
    }
    if (!(base.node(index) == next.node(index))) {
      delta.nodes.push_back({index, next.node(index)});
    }
  }
  return delta;
}

repro::Result<MerkleTree> apply_tree_delta(const MerkleTree& base,
                                           const TreeDelta& delta) {
  if (base.layout().num_leaves != delta.num_leaves) {
    return repro::failed_precondition(
        "delta leaf count does not match base tree");
  }
  if (!(base.params() == delta.params)) {
    return repro::failed_precondition(
        "delta tree params do not match base tree");
  }
  std::vector<hash::Digest128> nodes(base.nodes().begin(),
                                     base.nodes().end());
  for (const DeltaNode& node : delta.nodes) {
    if (node.index >= nodes.size()) {
      return repro::corrupt_data("delta node index exceeds tree node count");
    }
    nodes[node.index] = node.digest;
  }
  return MerkleTree::from_parts(delta.params, delta.data_bytes,
                                delta.num_leaves, std::move(nodes));
}

repro::Result<MerkleTree> resolve_delta_chain(
    const std::filesystem::path& path, ChainInfo* info) {
  // Walk differential links back to the anchor, collecting deltas newest
  // first, then replay them oldest first on the materialized anchor tree.
  std::vector<TreeDelta> chain;
  std::filesystem::path at = path;
  ChainInfo shape;
  MerkleTree anchor;
  for (std::uint64_t hop = 0;; ++hop) {
    if (hop > kMaxChainHops) {
      return repro::corrupt_data("differential sidecar chain too long: " +
                                 path.string());
    }
    REPRO_ASSIGN_OR_RETURN(MappedBundle bundle, MappedBundle::open(at));
    if (bundle.view().size() >= 1) {
      // Full tree (possibly an anchor that also carries its own RMFD —
      // the delta is for incremental consumers, not needed to resolve).
      REPRO_ASSIGN_OR_RETURN(TreeView tree_view, bundle.sole_tree());
      REPRO_ASSIGN_OR_RETURN(anchor, tree_view.materialize());
      if (bundle.view().has_delta()) {
        REPRO_ASSIGN_OR_RETURN(TreeDelta delta, bundle.view().delta());
        shape.anchor_iteration = delta.iteration;
      }
      break;
    }
    if (!bundle.view().has_delta()) {
      return repro::corrupt_data(
          "sidecar holds neither trees nor a differential section: " +
          at.string());
    }
    REPRO_ASSIGN_OR_RETURN(TreeDelta delta, bundle.view().delta());
    shape.differential = true;
    shape.anchor_iteration = delta.base_iteration;
    at = sibling_sidecar(path, delta.base_iteration);
    chain.push_back(std::move(delta));
  }
  shape.chain_length = chain.size();
  MerkleTree tree = std::move(anchor);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    REPRO_ASSIGN_OR_RETURN(tree, apply_tree_delta(tree, *it));
  }
  if (info != nullptr) *info = shape;
  return tree;
}

repro::Result<ChainInfo> probe_delta_chain(
    const std::filesystem::path& path) {
  ChainInfo shape;
  std::filesystem::path at = path;
  for (std::uint64_t hop = 0;; ++hop) {
    if (hop > kMaxChainHops) {
      return repro::corrupt_data("differential sidecar chain too long: " +
                                 path.string());
    }
    REPRO_ASSIGN_OR_RETURN(MappedBundle bundle, MappedBundle::open(at));
    if (bundle.view().size() >= 1) {
      if (bundle.view().has_delta()) {
        REPRO_ASSIGN_OR_RETURN(TreeDelta delta, bundle.view().delta());
        shape.anchor_iteration = delta.iteration;
      }
      return shape;
    }
    if (!bundle.view().has_delta()) {
      return repro::corrupt_data(
          "sidecar holds neither trees nor a differential section: " +
          at.string());
    }
    REPRO_ASSIGN_OR_RETURN(TreeDelta delta, bundle.view().delta());
    shape.differential = true;
    shape.anchor_iteration = delta.base_iteration;
    ++shape.chain_length;
    at = sibling_sidecar(path, delta.base_iteration);
  }
}

}  // namespace repro::merkle
