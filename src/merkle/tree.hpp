// Merkle-tree compact checkpoint metadata (Section 2.3, Algorithm 1).
//
// One error-bounded digest per chunk forms the leaves; internal nodes hash
// the concatenation of their children. The serialized tree is the only thing
// a comparison has to read when two runs agree — the paper's "ideal case"
// where no checkpoint bulk data is touched at all.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "common/bytes.hpp"
#include "common/status.hpp"
#include "hash/chunk_hasher.hpp"
#include "hash/digest.hpp"
#include "merkle/layout.hpp"
#include "par/exec.hpp"

namespace repro::merkle {

/// How chunk bytes are interpreted when quantizing.
enum class ValueKind : std::uint8_t {
  kF32 = 0,  ///< IEEE-754 binary32 values (HACC fields)
  kF64 = 1,  ///< IEEE-754 binary64 values
  kBytes = 2,  ///< opaque bytes, hashed bitwise (no error bound)
};

std::uint32_t value_size(ValueKind kind) noexcept;
std::string_view value_kind_name(ValueKind kind) noexcept;

struct TreeParams {
  /// Chunk size in bytes (one Merkle leaf per chunk). Must be a positive
  /// multiple of the value size. The paper sweeps 4 KB … 512 KB.
  std::uint64_t chunk_bytes = 64 * 1024;
  ValueKind value_kind = ValueKind::kF32;
  hash::HashParams hash;

  friend bool operator==(const TreeParams&, const TreeParams&) = default;
};

repro::Status validate(const TreeParams& params);

/// Sentinel digest carried by padding leaves (identical across runs, so the
/// comparison prunes padded subtrees immediately).
hash::Digest128 padding_digest() noexcept;

class MerkleTree {
 public:
  MerkleTree() = default;

  [[nodiscard]] const TreeParams& params() const noexcept { return params_; }
  [[nodiscard]] const TreeLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::uint64_t data_bytes() const noexcept { return data_bytes_; }
  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return layout_.num_leaves;
  }

  [[nodiscard]] const hash::Digest128& node(std::uint64_t index) const {
    return nodes_[index];
  }
  [[nodiscard]] const hash::Digest128& root() const { return nodes_[0]; }
  [[nodiscard]] const hash::Digest128& leaf(std::uint64_t chunk) const {
    return nodes_[layout_.leaf_node(chunk)];
  }
  [[nodiscard]] std::span<const hash::Digest128> nodes() const {
    return nodes_;
  }

  /// Byte range of chunk `i` within the original data.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> chunk_range(
      std::uint64_t chunk) const noexcept {
    const std::uint64_t begin = chunk * params_.chunk_bytes;
    const std::uint64_t end =
        std::min(begin + params_.chunk_bytes, data_bytes_);
    return {begin, end};
  }

  /// Serialized metadata size in bytes (the paper's ~2·D·(N/C) footprint
  /// plus a fixed header).
  [[nodiscard]] std::uint64_t metadata_bytes() const noexcept;

  /// Exact byte size serialize() produces (header + digest payload).
  [[nodiscard]] std::uint64_t serialized_bytes() const noexcept;

  /// Serialize to a byte buffer / file ("RMRK" format, version 1). The
  /// buffer behind `serialize` is reserved to the exact output size up
  /// front; `serialize_into` appends the same encoding to a caller-owned
  /// writer (lets bundles emit entries without per-tree temporaries).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  void serialize_into(ByteWriter& writer) const;
  repro::Status save(const std::filesystem::path& path) const;

  /// Parse the legacy "RMRK" v1 stream specifically. load() is the compat
  /// shim: it detects the on-disk format by magic and accepts both v1
  /// sidecars and single-tree flat v2 sidecars (see merkle/flat.hpp).
  static repro::Result<MerkleTree> deserialize(
      std::span<const std::uint8_t> bytes);
  static repro::Result<MerkleTree> load(const std::filesystem::path& path);

  /// Assemble a tree from already-validated components (the materialize
  /// path of flat v2 views). `nodes` must hold exactly the layout's node
  /// count for `num_leaves`.
  static repro::Result<MerkleTree> from_parts(
      TreeParams params, std::uint64_t data_bytes, std::uint64_t num_leaves,
      std::vector<hash::Digest128> nodes);

  friend class TreeBuilder;

 private:
  TreeParams params_;
  TreeLayout layout_;
  std::uint64_t data_bytes_ = 0;
  std::vector<hash::Digest128> nodes_;
};

/// Bottom-up parallel tree construction (Algorithm 1): all leaves hashed in
/// parallel, then each internal level in parallel, synchronizing only
/// between levels.
class TreeBuilder {
 public:
  TreeBuilder(TreeParams params, par::Exec exec)
      : params_(std::move(params)), exec_(exec) {}

  /// Scheduling grain for the dynamically claimed leaf-hash pass, in chunks
  /// per claim (0 = auto: leaves / (8 * ways)). A builder knob, not a tree
  /// parameter — it cannot affect the digests, only how leaf work is dealt
  /// to workers. See docs/PERF.md.
  TreeBuilder& set_leaf_grain(std::uint64_t chunks_per_claim) noexcept {
    leaf_grain_ = chunks_per_claim;
    return *this;
  }
  [[nodiscard]] std::uint64_t leaf_grain() const noexcept {
    return leaf_grain_;
  }

  /// Build over an in-memory buffer (used at capture time, when the
  /// checkpoint bytes are still resident).
  repro::Result<MerkleTree> build(std::span<const std::uint8_t> data) const;

  /// Incremental update: rehash only `changed_chunks` (sorted, unique) of
  /// `data` and recompute the ancestor paths they dirty — O(k·chunk + k·log
  /// n) hashing instead of a full O(n) rebuild. `data` must be the complete
  /// current buffer the tree is to describe (its size must match the
  /// tree's). Equivalent to build(data) whenever every out-of-date chunk is
  /// listed; the DeltaStore uses it with the diff set it just computed.
  repro::Status update_leaves(MerkleTree& tree,
                              std::span<const std::uint8_t> data,
                              std::span<const std::uint64_t> changed_chunks)
      const;

 private:
  /// Hash chunk `chunk` of `data` under params_ (shared by build/update).
  hash::Digest128 hash_chunk(std::span<const std::uint8_t> data,
                             const MerkleTree& tree,
                             std::uint64_t chunk) const;

  TreeParams params_;
  par::Exec exec_;
  std::uint64_t leaf_grain_ = 0;  // 0 = auto
};

}  // namespace repro::merkle
