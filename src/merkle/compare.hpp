// Stage 1 of the two-stage comparison (Section 2.3, Figure 4): walk two
// Merkle trees level-synchronously, prune every subtree whose root digests
// match, and return the leaves that *may* differ. Starting level is
// configurable — the paper starts "in the middle of the tree" so every
// parallel lane has work; bench_ablation_start_level quantifies the choice.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "merkle/flat.hpp"
#include "merkle/tree.hpp"
#include "par/exec.hpp"

namespace repro::merkle {

struct TreeCompareOptions {
  /// Level to seed the BFS from: -1 = auto (shallowest level with at least
  /// 4x the executor's parallel ways), 0 = root, layout.depth = leaves.
  int start_level = -1;
  par::Exec exec = par::Exec::parallel();
};

struct TreeCompareStats {
  std::uint64_t nodes_visited = 0;      ///< hash comparisons performed
  std::uint64_t subtrees_pruned = 0;    ///< matching non-leaf nodes dropped
  std::uint64_t levels_traversed = 0;
};

/// Returns the sorted indices of chunks whose leaf digests differ between
/// the two trees. Errors if the trees were built with incompatible
/// parameters (chunk size, error bound, value kind) or over different data
/// sizes — the paper's model aligns checkpoints across runs one-to-one.
///
/// The core implementation runs over TreeView, so a mapped flat sidecar is
/// compared in place with no node materialization; the MerkleTree overload
/// wraps the decoded trees in aliasing views (same digests, same walk).
repro::Result<std::vector<std::uint64_t>> compare_trees(
    const TreeView& run_a, const TreeView& run_b,
    const TreeCompareOptions& options = {},
    TreeCompareStats* stats = nullptr);
repro::Result<std::vector<std::uint64_t>> compare_trees(
    const MerkleTree& run_a, const MerkleTree& run_b,
    const TreeCompareOptions& options = {},
    TreeCompareStats* stats = nullptr);

/// Reference implementation: compare every real leaf pair directly. Used by
/// tests to prove the pruned BFS is exact, and by the start-level ablation.
std::vector<std::uint64_t> compare_leaves_bruteforce(const TreeView& run_a,
                                                     const TreeView& run_b);
std::vector<std::uint64_t> compare_leaves_bruteforce(const MerkleTree& run_a,
                                                     const MerkleTree& run_b);

/// Pick the auto start level: shallowest level whose width >= 4 * ways,
/// clamped to the tree depth.
std::uint32_t auto_start_level(const TreeLayout& layout, std::size_t ways);

/// Expands a sorted flagged-chunk list (compare_trees output) into a dense
/// per-chunk bitmap. Forensics tools (`repro-cli timeline`'s chunk-space
/// heatmap) index this directly instead of binary-searching the list.
/// Out-of-range indices are ignored.
std::vector<bool> flagged_bitmap(std::span<const std::uint64_t> flagged,
                                 std::uint64_t num_chunks);

}  // namespace repro::merkle
