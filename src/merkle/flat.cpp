#include "merkle/flat.hpp"

#include <algorithm>

#include "common/bytes.hpp"
#include "common/fs.hpp"
#include "hash/murmur3.hpp"
#include "telemetry/metrics.hpp"

namespace repro::merkle {

namespace {

constexpr std::uint64_t kHeaderBytes = 32;
constexpr std::uint64_t kSectionRowBytes = 32;
constexpr std::uint64_t kTreeRecordBytes = 72;
constexpr std::uint32_t kMaxSections = 16;
// Matches the v1 deserializer's plausibility bound: a leaf count beyond
// this would overflow the padded-layout math before any size check fires.
constexpr std::uint64_t kMaxLeaves = std::uint64_t{1} << 50;

constexpr std::uint64_t align_up(std::uint64_t value) noexcept {
  return (value + (kFlatSectionAlign - 1)) & ~(kFlatSectionAlign - 1);
}

// All flat-blob access goes through these: unaligned-safe, strict-aliasing
// safe, and little-endian by virtue of running on LE hosts (the same
// contract ByteWriter/ByteReader already rely on).
void store_u32(std::uint8_t* at, std::uint32_t v) noexcept {
  std::memcpy(at, &v, sizeof v);
}
void store_u64(std::uint8_t* at, std::uint64_t v) noexcept {
  std::memcpy(at, &v, sizeof v);
}
void store_f64(std::uint8_t* at, double v) noexcept {
  std::memcpy(at, &v, sizeof v);
}
std::uint32_t load_u32(const std::uint8_t* at) noexcept {
  std::uint32_t v;
  std::memcpy(&v, at, sizeof v);
  return v;
}
std::uint64_t load_u64(const std::uint8_t* at) noexcept {
  std::uint64_t v;
  std::memcpy(&v, at, sizeof v);
  return v;
}
double load_f64(const std::uint8_t* at) noexcept {
  double v;
  std::memcpy(&v, at, sizeof v);
  return v;
}

std::uint64_t section_checksum(std::span<const std::uint8_t> bytes,
                               std::uint32_t id) noexcept {
  return hash::murmur3f(bytes, id).lo;
}

struct FlatMetrics {
  telemetry::Counter& opens;
  telemetry::Counter& mapped_opens;
  telemetry::Counter& heap_fallbacks;
  telemetry::Counter& v1_conversions;

  static FlatMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static FlatMetrics* metrics = new FlatMetrics{
        registry.counter("merkle.flat.opens"),
        registry.counter("merkle.flat.mapped_opens"),
        registry.counter("merkle.flat.heap_fallbacks"),
        registry.counter("merkle.flat.v1_conversions"),
    };
    return *metrics;
  }
};

}  // namespace

SidecarFormat detect_sidecar_format(
    std::span<const std::uint8_t> bytes) noexcept {
  if (bytes.size() < sizeof(std::uint32_t)) return SidecarFormat::kUnknown;
  switch (load_u32(bytes.data())) {
    case 0x4B524D52: return SidecarFormat::kV1Tree;    // "RMRK"
    case 0x42524D52: return SidecarFormat::kV1Bundle;  // "RMRB"
    case kFlatMagic: return SidecarFormat::kV2Flat;    // "RMF2"
    default: return SidecarFormat::kUnknown;
  }
}

std::string_view sidecar_format_name(SidecarFormat format) noexcept {
  switch (format) {
    case SidecarFormat::kV1Tree: return "RMRK v1 (legacy tree)";
    case SidecarFormat::kV1Bundle: return "RMRB v1 (legacy bundle)";
    case SidecarFormat::kV2Flat: return "RMF2 v2 (flat, mmap-able)";
    case SidecarFormat::kUnknown: break;
  }
  return "unknown";
}

// ---- TreeView --------------------------------------------------------------

repro::Result<MerkleTree> TreeView::materialize() const {
  if (!valid()) {
    return repro::failed_precondition("cannot materialize an empty TreeView");
  }
  std::vector<hash::Digest128> nodes(layout_.num_nodes());
  std::memcpy(nodes.data(), nodes_, nodes.size() * hash::kDigestBytes);
  return MerkleTree::from_parts(params_, data_bytes_, layout_.num_leaves,
                                std::move(nodes));
}

// ---- TreeDelta -------------------------------------------------------------

std::vector<std::uint64_t> TreeDelta::changed_chunks() const {
  const TreeLayout layout = TreeLayout::for_leaves(num_leaves);
  const std::uint64_t first_leaf = layout.padded_leaves - 1;
  std::vector<std::uint64_t> chunks;
  for (const DeltaNode& node : nodes) {
    if (node.index < first_leaf) continue;
    const std::uint64_t leaf = node.index - first_leaf;
    if (leaf < num_leaves) chunks.push_back(leaf);
  }
  return chunks;  // entries are sorted, so the leaf slice already is
}

// ---- BundleView ------------------------------------------------------------

const TreeView* BundleView::find(std::string_view name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry.view;
  }
  return nullptr;
}

repro::Result<BundleView> BundleView::parse(
    std::span<const std::uint8_t> bytes, bool verify_checksums) {
  const std::uint8_t* base = bytes.data();
  if (bytes.size() < kHeaderBytes) {
    return repro::corrupt_data("flat sidecar shorter than its header");
  }
  if (load_u32(base) != kFlatMagic) {
    return repro::corrupt_data("bad flat sidecar magic");
  }
  const std::uint32_t version = load_u32(base + 4);
  if (version != kFlatVersion) {
    return repro::unsupported(
        "flat sidecar version " + std::to_string(version) +
        " (this build reads RMRK v1 and RMF2 v2); `repro-cli migrate` "
        "rewrites sidecars between supported formats");
  }
  if (load_u32(base + 8) != kHeaderBytes) {
    return repro::corrupt_data("flat sidecar header size mismatch");
  }
  const std::uint32_t section_count = load_u32(base + 12);
  if (section_count == 0 || section_count > kMaxSections) {
    return repro::corrupt_data("implausible flat sidecar section count");
  }
  const std::uint64_t total_bytes = load_u64(base + 16);
  if (total_bytes != bytes.size()) {
    return repro::corrupt_data(
        "flat sidecar truncated: header declares " +
        std::to_string(total_bytes) + " bytes, file holds " +
        std::to_string(bytes.size()));
  }
  const std::uint64_t table_end =
      kHeaderBytes + std::uint64_t{section_count} * kSectionRowBytes;
  if (table_end > bytes.size()) {
    return repro::corrupt_data("flat sidecar section table truncated");
  }

  BundleView view;
  view.total_bytes_ = total_bytes;
  view.sections_.reserve(section_count);
  const SectionInfo* tree_table = nullptr;
  const SectionInfo* names = nullptr;
  const SectionInfo* nodes = nullptr;
  const SectionInfo* delta = nullptr;
  for (std::uint32_t i = 0; i < section_count; ++i) {
    const std::uint8_t* row = base + kHeaderBytes + i * kSectionRowBytes;
    SectionInfo info;
    info.id = load_u32(row);
    info.offset = load_u64(row + 8);
    info.length = load_u64(row + 16);
    info.checksum = load_u64(row + 24);
    if (info.offset % kFlatSectionAlign != 0) {
      return repro::corrupt_data("flat sidecar section " +
                                 std::to_string(info.id) + " misaligned");
    }
    if (info.offset < table_end || info.offset > bytes.size() ||
        info.length > bytes.size() - info.offset) {
      return repro::corrupt_data("flat sidecar section " +
                                 std::to_string(info.id) +
                                 " extends past the file");
    }
    if (verify_checksums) {
      const std::uint64_t actual = section_checksum(
          bytes.subspan(info.offset, info.length), info.id);
      if (actual != info.checksum) {
        return repro::corrupt_data("flat sidecar section " +
                                   std::to_string(info.id) +
                                   " checksum mismatch");
      }
    }
    view.sections_.push_back(info);
    const SectionInfo* stored = &view.sections_.back();
    switch (static_cast<SectionId>(info.id)) {
      case SectionId::kTreeTable:
        if (tree_table != nullptr) {
          return repro::corrupt_data("duplicate flat sidecar tree table");
        }
        tree_table = stored;
        break;
      case SectionId::kNames:
        if (names != nullptr) {
          return repro::corrupt_data("duplicate flat sidecar name section");
        }
        names = stored;
        break;
      case SectionId::kNodes:
        if (nodes != nullptr) {
          return repro::corrupt_data("duplicate flat sidecar node section");
        }
        nodes = stored;
        break;
      case SectionId::kDelta:
        if (delta != nullptr) {
          return repro::corrupt_data("duplicate flat sidecar delta section");
        }
        delta = stored;
        break;
      default:
        break;  // unknown sections are skippable by design (forward compat)
    }
  }
  if (delta != nullptr) {
    view.delta_bytes_ = base + delta->offset;
    view.delta_length_ = delta->length;
  }
  if (tree_table == nullptr || names == nullptr || nodes == nullptr) {
    return repro::corrupt_data(
        "flat sidecar is missing a required section (tree table, names, "
        "nodes)");
  }

  if (tree_table->length < 8) {
    return repro::corrupt_data("flat sidecar tree table truncated");
  }
  const std::uint8_t* table = base + tree_table->offset;
  const std::uint32_t tree_count = load_u32(table);
  if (tree_table->length != 8 + std::uint64_t{tree_count} * kTreeRecordBytes) {
    return repro::corrupt_data(
        "flat sidecar tree table length inconsistent with its tree count");
  }

  view.entries_.reserve(tree_count);
  for (std::uint32_t i = 0; i < tree_count; ++i) {
    const std::uint8_t* rec = table + 8 + i * kTreeRecordBytes;
    const std::uint64_t data_bytes = load_u64(rec);
    const std::uint64_t chunk_bytes = load_u64(rec + 8);
    const std::uint64_t num_leaves = load_u64(rec + 16);
    const std::uint64_t num_nodes = load_u64(rec + 24);
    const std::uint64_t nodes_offset = load_u64(rec + 32);
    const std::uint64_t name_offset = load_u64(rec + 40);
    const std::uint32_t name_length = load_u32(rec + 48);
    const std::uint32_t value_kind = load_u32(rec + 52);
    const double error_bound = load_f64(rec + 56);
    const std::uint32_t values_per_block = load_u32(rec + 64);

    if (num_leaves > kMaxLeaves) {
      return repro::corrupt_data("implausible leaf count in flat sidecar");
    }
    if (value_kind > static_cast<std::uint32_t>(ValueKind::kBytes)) {
      return repro::corrupt_data("bad value kind in flat sidecar");
    }

    Entry entry;
    entry.view.params_.chunk_bytes = chunk_bytes;
    entry.view.params_.value_kind = static_cast<ValueKind>(value_kind);
    entry.view.params_.hash.error_bound = error_bound;
    entry.view.params_.hash.values_per_block = values_per_block;
    entry.view.data_bytes_ = data_bytes;
    entry.view.layout_ = TreeLayout::for_leaves(num_leaves);
    REPRO_RETURN_IF_ERROR(validate(entry.view.params_));
    if (num_nodes != entry.view.layout_.num_nodes()) {
      return repro::corrupt_data(
          "flat sidecar node count inconsistent with leaf count");
    }
    // num_nodes <= 2^51 after the leaf check, so the multiply cannot wrap.
    const std::uint64_t node_bytes = num_nodes * hash::kDigestBytes;
    if (nodes_offset > nodes->length ||
        node_bytes > nodes->length - nodes_offset) {
      return repro::corrupt_data(
          "flat sidecar tree digests extend past the node section");
    }
    entry.view.nodes_ = base + nodes->offset + nodes_offset;
    if (name_offset > names->length ||
        name_length > names->length - name_offset) {
      return repro::corrupt_data(
          "flat sidecar tree name extends past the name section");
    }
    entry.name = std::string_view(
        reinterpret_cast<const char*>(base + names->offset + name_offset),
        name_length);
    view.entries_.push_back(entry);
  }
  return view;
}

repro::Result<TreeDelta> BundleView::delta() const {
  if (delta_bytes_ == nullptr) {
    return repro::failed_precondition("sidecar carries no delta section");
  }
  constexpr std::uint64_t kDeltaHeaderBytes = 72;
  constexpr std::uint64_t kDeltaEntryBytes = 24;
  const std::uint8_t* at = delta_bytes_;
  if (delta_length_ < kDeltaHeaderBytes) {
    return repro::corrupt_data("delta section shorter than its header");
  }
  if (load_u32(at) != kDeltaMagic) {
    return repro::corrupt_data("bad delta section magic");
  }
  if (load_u32(at + 4) != kDeltaVersion) {
    return repro::unsupported("unsupported delta section version " +
                              std::to_string(load_u32(at + 4)));
  }
  TreeDelta delta;
  delta.iteration = load_u64(at + 8);
  delta.base_iteration = load_u64(at + 16);
  delta.data_bytes = load_u64(at + 24);
  delta.params.chunk_bytes = load_u64(at + 32);
  delta.num_leaves = load_u64(at + 40);
  const std::uint32_t value_kind = load_u32(at + 48);
  delta.params.hash.values_per_block = load_u32(at + 52);
  delta.params.hash.error_bound = load_f64(at + 56);
  const std::uint64_t entry_count = load_u64(at + 64);

  if (delta.base_iteration >= delta.iteration) {
    return repro::corrupt_data("delta section base iteration not before its "
                               "own iteration");
  }
  if (value_kind > static_cast<std::uint32_t>(ValueKind::kBytes)) {
    return repro::corrupt_data("bad value kind in delta section");
  }
  delta.params.value_kind = static_cast<ValueKind>(value_kind);
  if (delta.num_leaves > kMaxLeaves) {
    return repro::corrupt_data("implausible leaf count in delta section");
  }
  REPRO_RETURN_IF_ERROR(validate(delta.params));
  if (delta_length_ != kDeltaHeaderBytes + entry_count * kDeltaEntryBytes) {
    return repro::corrupt_data(
        "delta section length inconsistent with its entry count");
  }
  const TreeLayout layout = TreeLayout::for_leaves(delta.num_leaves);
  const std::uint64_t num_nodes = layout.num_nodes();
  delta.nodes.reserve(entry_count);
  std::uint64_t prev_index = 0;
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint8_t* rec = at + kDeltaHeaderBytes + i * kDeltaEntryBytes;
    DeltaNode node;
    node.index = load_u64(rec);
    node.digest.lo = load_u64(rec + 8);
    node.digest.hi = load_u64(rec + 16);
    if (node.index >= num_nodes) {
      return repro::corrupt_data("delta section node index out of range");
    }
    if (i > 0 && node.index <= prev_index) {
      return repro::corrupt_data("delta section entries not strictly sorted");
    }
    prev_index = node.index;
    delta.nodes.push_back(node);
  }
  return delta;
}

// ---- FlatBuilder -----------------------------------------------------------

repro::Status FlatBuilder::add(std::string name, const MerkleTree& tree) {
  for (const Entry& entry : entries_) {
    if (entry.name == name) {
      return repro::already_exists("flat sidecar already holds a tree named " +
                                   name);
    }
  }
  REPRO_RETURN_IF_ERROR(validate(tree.params()));
  entries_.push_back(Entry{std::move(name), &tree});
  return repro::Status::ok();
}

namespace {

/// Shared offset math for output_bytes()/finish(): sections in table order,
/// each 8-aligned, with the optional RMFD delta section last.
struct FlatLayout {
  std::uint32_t section_count = 3;
  std::uint64_t table_off = 0;
  std::uint64_t table_len = 0;
  std::uint64_t names_off = 0;
  std::uint64_t names_len = 0;
  std::uint64_t nodes_off = 0;
  std::uint64_t nodes_len = 0;
  std::uint64_t delta_off = 0;
  std::uint64_t delta_len = 0;
  std::uint64_t total = 0;
};

}  // namespace

std::uint64_t FlatBuilder::output_bytes() const noexcept {
  FlatLayout layout;
  layout.section_count = delta_.has_value() ? 4 : 3;
  layout.table_len = 8 + entries_.size() * kTreeRecordBytes;
  for (const Entry& entry : entries_) {
    layout.names_len += entry.name.size();
    layout.nodes_len += entry.tree->nodes().size() * hash::kDigestBytes;
  }
  layout.table_off = kHeaderBytes + layout.section_count * kSectionRowBytes;
  layout.names_off = align_up(layout.table_off + layout.table_len);
  layout.nodes_off = align_up(layout.names_off + layout.names_len);
  layout.total = layout.nodes_off + layout.nodes_len;
  if (delta_.has_value()) {
    layout.delta_off = align_up(layout.total);
    layout.delta_len = delta_->encoded_bytes();
    layout.total = layout.delta_off + layout.delta_len;
  }
  return layout.total;
}

std::vector<std::uint8_t> FlatBuilder::finish() const {
  FlatLayout layout;
  layout.section_count = delta_.has_value() ? 4 : 3;
  layout.table_len = 8 + entries_.size() * kTreeRecordBytes;
  for (const Entry& entry : entries_) {
    layout.names_len += entry.name.size();
    layout.nodes_len += entry.tree->nodes().size() * hash::kDigestBytes;
  }
  layout.table_off = kHeaderBytes + layout.section_count * kSectionRowBytes;
  layout.names_off = align_up(layout.table_off + layout.table_len);
  layout.nodes_off = align_up(layout.names_off + layout.names_len);
  layout.total = layout.nodes_off + layout.nodes_len;
  if (delta_.has_value()) {
    layout.delta_off = align_up(layout.total);
    layout.delta_len = delta_->encoded_bytes();
    layout.total = layout.delta_off + layout.delta_len;
  }
  const std::uint64_t table_off = layout.table_off;
  const std::uint64_t table_len = layout.table_len;
  const std::uint64_t names_off = layout.names_off;
  const std::uint64_t names_len = layout.names_len;
  const std::uint64_t nodes_off = layout.nodes_off;
  const std::uint64_t nodes_len = layout.nodes_len;
  const std::uint64_t total = layout.total;

  // One exact-size allocation, zero-initialized so alignment gaps are
  // deterministic bytes (checksummed files must not leak heap garbage).
  std::vector<std::uint8_t> out(total, 0);
  std::uint8_t* base = out.data();

  store_u32(base, kFlatMagic);
  store_u32(base + 4, kFlatVersion);
  store_u32(base + 8, static_cast<std::uint32_t>(kHeaderBytes));
  store_u32(base + 12, layout.section_count);
  store_u64(base + 16, total);

  // Section payloads first, then the table rows (checksums need the bytes).
  store_u32(base + table_off, static_cast<std::uint32_t>(entries_.size()));
  std::uint64_t name_cursor = 0;
  std::uint64_t node_cursor = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    const MerkleTree& tree = *entry.tree;
    std::uint8_t* rec = base + table_off + 8 + i * kTreeRecordBytes;
    store_u64(rec, tree.data_bytes());
    store_u64(rec + 8, tree.params().chunk_bytes);
    store_u64(rec + 16, tree.layout().num_leaves);
    store_u64(rec + 24, tree.nodes().size());
    store_u64(rec + 32, node_cursor);
    store_u64(rec + 40, name_cursor);
    store_u32(rec + 48, static_cast<std::uint32_t>(entry.name.size()));
    store_u32(rec + 52, static_cast<std::uint32_t>(tree.params().value_kind));
    store_f64(rec + 56, tree.params().hash.error_bound);
    store_u32(rec + 64, tree.params().hash.values_per_block);

    std::memcpy(base + names_off + name_cursor, entry.name.data(),
                entry.name.size());
    const std::uint64_t tree_node_bytes =
        tree.nodes().size() * hash::kDigestBytes;
    std::memcpy(base + nodes_off + node_cursor, tree.nodes().data(),
                tree_node_bytes);
    name_cursor += entry.name.size();
    node_cursor += tree_node_bytes;
  }

  const auto write_row = [&](std::size_t row, SectionId id,
                             std::uint64_t offset, std::uint64_t length) {
    std::uint8_t* at = base + kHeaderBytes + row * kSectionRowBytes;
    store_u32(at, static_cast<std::uint32_t>(id));
    store_u64(at + 8, offset);
    store_u64(at + 16, length);
    store_u64(at + 24,
              section_checksum(
                  std::span<const std::uint8_t>(base + offset, length),
                  static_cast<std::uint32_t>(id)));
  };
  if (delta_.has_value()) {
    const TreeDelta& delta = *delta_;
    std::uint8_t* at = base + layout.delta_off;
    store_u32(at, kDeltaMagic);
    store_u32(at + 4, kDeltaVersion);
    store_u64(at + 8, delta.iteration);
    store_u64(at + 16, delta.base_iteration);
    store_u64(at + 24, delta.data_bytes);
    store_u64(at + 32, delta.params.chunk_bytes);
    store_u64(at + 40, delta.num_leaves);
    store_u32(at + 48, static_cast<std::uint32_t>(delta.params.value_kind));
    store_u32(at + 52, delta.params.hash.values_per_block);
    store_f64(at + 56, delta.params.hash.error_bound);
    store_u64(at + 64, delta.nodes.size());
    std::uint8_t* entry_at = at + 72;
    for (const DeltaNode& node : delta.nodes) {
      store_u64(entry_at, node.index);
      store_u64(entry_at + 8, node.digest.lo);
      store_u64(entry_at + 16, node.digest.hi);
      entry_at += 24;
    }
  }

  write_row(0, SectionId::kTreeTable, table_off, table_len);
  write_row(1, SectionId::kNames, names_off, names_len);
  write_row(2, SectionId::kNodes, nodes_off, nodes_len);
  if (delta_.has_value()) {
    write_row(3, SectionId::kDelta, layout.delta_off, layout.delta_len);
  }
  return out;
}

std::vector<std::uint8_t> flat_serialize(const MerkleTree& tree) {
  FlatBuilder builder;
  // add() only rejects duplicates/invalid params; a built tree is valid.
  (void)builder.add("", tree);
  return builder.finish();
}

std::vector<std::uint8_t> flat_serialize(const TreeBundle& bundle) {
  FlatBuilder builder;
  for (const auto& [name, tree] : bundle.entries()) {
    (void)builder.add(name, tree);
  }
  return builder.finish();
}

repro::Status save_flat(const MerkleTree& tree,
                        const std::filesystem::path& path) {
  return repro::write_file(path, flat_serialize(tree))
      .with_context("saving flat merkle metadata");
}

repro::Status save_flat(const TreeBundle& bundle,
                        const std::filesystem::path& path) {
  return repro::write_file(path, flat_serialize(bundle))
      .with_context("saving flat merkle bundle");
}

std::vector<std::uint8_t> flat_serialize_delta(const TreeDelta& delta) {
  // A delta-only sidecar is a normal RMF2 file whose standard sections are
  // empty (tree_count == 0); readers without RMFD support parse it and see
  // zero trees instead of failing on an unknown format.
  FlatBuilder builder;
  builder.set_delta(delta);
  return builder.finish();
}

repro::Status save_flat_delta(const TreeDelta& delta,
                              const std::filesystem::path& path) {
  return repro::write_file(path, flat_serialize_delta(delta))
      .with_context("saving differential merkle sidecar");
}

repro::Status save_sidecar(const MerkleTree& tree,
                           const std::filesystem::path& path,
                           SidecarWriteFormat format) {
  if (format == SidecarWriteFormat::kLegacyV1) return tree.save(path);
  return save_flat(tree, path);
}

// ---- MappedBundle ----------------------------------------------------------

repro::Result<MappedBundle> MappedBundle::adopt(
    MappedBundle bundle, std::span<const std::uint8_t> raw) {
  switch (detect_sidecar_format(raw)) {
    case SidecarFormat::kV2Flat: {
      REPRO_ASSIGN_OR_RETURN(bundle.view_, BundleView::parse(raw));
      return bundle;
    }
    case SidecarFormat::kV1Tree: {
      FlatMetrics::get().v1_conversions.increment();
      REPRO_ASSIGN_OR_RETURN(MerkleTree tree, MerkleTree::deserialize(raw));
      std::vector<std::uint8_t> flat = flat_serialize(tree);
      bundle.region_ = io::MmapRegion{};  // raw may alias the mapping
      bundle.heap_ = std::move(flat);
      bundle.converted_ = true;
      REPRO_ASSIGN_OR_RETURN(bundle.view_,
                             BundleView::parse(bundle.heap_, false));
      return bundle;
    }
    case SidecarFormat::kV1Bundle: {
      FlatMetrics::get().v1_conversions.increment();
      REPRO_ASSIGN_OR_RETURN(TreeBundle legacy, TreeBundle::deserialize(raw));
      std::vector<std::uint8_t> flat = flat_serialize(legacy);
      bundle.region_ = io::MmapRegion{};
      bundle.heap_ = std::move(flat);
      bundle.converted_ = true;
      REPRO_ASSIGN_OR_RETURN(bundle.view_,
                             BundleView::parse(bundle.heap_, false));
      return bundle;
    }
    case SidecarFormat::kUnknown:
      break;
  }
  return repro::corrupt_data(
      "unrecognized sidecar magic (expected RMRK, RMRB, or RMF2)");
}

repro::Result<MappedBundle> MappedBundle::open(
    const std::filesystem::path& path) {
  FlatMetrics::get().opens.increment();
  auto region = io::MmapRegion::open(path);
  if (region.is_ok()) {
    MappedBundle bundle;
    bundle.region_ = std::move(region.value());
    const std::span<const std::uint8_t> raw = bundle.region_.bytes();
    FlatMetrics::get().mapped_opens.increment();
    return adopt(std::move(bundle), raw);
  }
  // Missing files stay hard errors; only the map step degrades to a read.
  if (!std::filesystem::exists(path)) {
    return repro::not_found("no merkle sidecar at " + path.string());
  }
  FlatMetrics::get().heap_fallbacks.increment();
  REPRO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> bytes,
                         repro::read_file(path));
  return from_bytes(std::move(bytes));
}

repro::Result<MappedBundle> MappedBundle::from_bytes(
    std::vector<std::uint8_t> bytes) {
  MappedBundle bundle;
  bundle.heap_ = std::move(bytes);
  const std::span<const std::uint8_t> raw{bundle.heap_};
  return adopt(std::move(bundle), raw);
}

repro::Result<TreeView> MappedBundle::sole_tree() const {
  if (view_.size() != 1) {
    if (view_.size() == 0 && view_.has_delta()) {
      return repro::failed_precondition(
          "sidecar is differential (RMFD only); resolve its delta chain "
          "against an anchor before reading trees");
    }
    return repro::failed_precondition(
        "sidecar holds " + std::to_string(view_.size()) +
        " trees; expected a single-tree sidecar");
  }
  return view_.tree(0);
}

}  // namespace repro::merkle
