#include "merkle/compare.hpp"

#include <algorithm>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace repro::merkle {
namespace {

struct CompareMetrics {
  telemetry::Counter& compares;
  telemetry::Counter& nodes_visited;
  telemetry::Counter& subtrees_pruned;
  telemetry::Counter& levels;

  static CompareMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static CompareMetrics* metrics = new CompareMetrics{
        registry.counter("merkle.compare.count"),
        registry.counter("merkle.compare.nodes_visited"),
        registry.counter("merkle.compare.subtrees_pruned"),
        registry.counter("merkle.compare.levels"),
    };
    return *metrics;
  }
};

}  // namespace

std::uint32_t auto_start_level(const TreeLayout& layout, std::size_t ways) {
  const std::uint64_t want = 4 * std::max<std::uint64_t>(ways, 1);
  std::uint32_t level = 0;
  while (level < layout.depth &&
         (std::uint64_t{1} << level) < want) {
    ++level;
  }
  return level;
}

repro::Result<std::vector<std::uint64_t>> compare_trees(
    const TreeView& run_a, const TreeView& run_b,
    const TreeCompareOptions& options, TreeCompareStats* stats) {
  if (!run_a.valid() || !run_b.valid()) {
    return repro::failed_precondition("cannot compare an empty tree view");
  }
  if (run_a.params() != run_b.params()) {
    return repro::failed_precondition(
        "merkle trees built with different parameters");
  }
  if (run_a.data_bytes() != run_b.data_bytes()) {
    return repro::failed_precondition(
        "merkle trees cover different data sizes (" +
        std::to_string(run_a.data_bytes()) + " vs " +
        std::to_string(run_b.data_bytes()) + ")");
  }

  const TreeLayout& layout = run_a.layout();
  TreeCompareStats local_stats;
  std::vector<std::uint64_t> diff_leaves;

  std::uint32_t level =
      options.start_level < 0
          ? auto_start_level(layout, options.exec.ways())
          : std::min<std::uint32_t>(
                static_cast<std::uint32_t>(options.start_level),
                layout.depth);

  // Seed frontier: every node of the start level.
  std::vector<std::uint64_t> frontier;
  frontier.reserve(std::size_t{1} << level);
  for (std::uint64_t node = TreeLayout::level_begin(level);
       node < TreeLayout::level_end(level); ++node) {
    frontier.push_back(node);
  }

  telemetry::TraceSpan descent_span("merkle.compare");
  std::vector<std::uint8_t> mismatch;
  while (!frontier.empty()) {
    telemetry::TraceSpan level_span("merkle.bfs.level");
    level_span.arg("level", static_cast<std::uint64_t>(level))
        .arg("frontier", static_cast<std::uint64_t>(frontier.size()));
    ++local_stats.levels_traversed;
    local_stats.nodes_visited += frontier.size();

    // Parallel hash comparison of the whole frontier (the per-level kernel).
    mismatch.assign(frontier.size(), 0);
    options.exec.for_each(0, frontier.size(), [&](std::uint64_t i) {
      const std::uint64_t node = frontier[i];
      mismatch[i] = run_a.node(node) != run_b.node(node) ? 1 : 0;
    });

    // Serial compaction between levels (the only synchronization point).
    if (level == layout.depth) {
      for (std::size_t i = 0; i < frontier.size(); ++i) {
        if (mismatch[i] == 0) continue;
        const std::uint64_t leaf = layout.node_leaf(frontier[i]);
        if (leaf < layout.num_leaves) diff_leaves.push_back(leaf);
      }
      level_span.arg("nodes_pruned", std::uint64_t{0});
      break;
    }

    std::uint64_t pruned_this_level = 0;
    std::vector<std::uint64_t> next;
    for (std::size_t i = 0; i < frontier.size(); ++i) {
      if (mismatch[i] != 0) {
        next.push_back(TreeLayout::left_child(frontier[i]));
        next.push_back(TreeLayout::right_child(frontier[i]));
      } else {
        ++local_stats.subtrees_pruned;
        ++pruned_this_level;
      }
    }
    level_span.arg("nodes_pruned", pruned_this_level);
    frontier = std::move(next);
    ++level;
  }

  CompareMetrics& metrics = CompareMetrics::get();
  metrics.compares.increment();
  metrics.nodes_visited.add(local_stats.nodes_visited);
  metrics.subtrees_pruned.add(local_stats.subtrees_pruned);
  metrics.levels.add(local_stats.levels_traversed);
  descent_span.arg("nodes_visited", local_stats.nodes_visited)
      .arg("subtrees_pruned", local_stats.subtrees_pruned);

  std::sort(diff_leaves.begin(), diff_leaves.end());
  if (stats != nullptr) *stats = local_stats;
  return diff_leaves;
}

repro::Result<std::vector<std::uint64_t>> compare_trees(
    const MerkleTree& run_a, const MerkleTree& run_b,
    const TreeCompareOptions& options, TreeCompareStats* stats) {
  return compare_trees(TreeView(run_a), TreeView(run_b), options, stats);
}

std::vector<std::uint64_t> compare_leaves_bruteforce(const TreeView& run_a,
                                                     const TreeView& run_b) {
  std::vector<std::uint64_t> diff;
  const std::uint64_t count =
      std::min(run_a.num_chunks(), run_b.num_chunks());
  for (std::uint64_t chunk = 0; chunk < count; ++chunk) {
    if (run_a.leaf(chunk) != run_b.leaf(chunk)) diff.push_back(chunk);
  }
  return diff;
}

std::vector<std::uint64_t> compare_leaves_bruteforce(const MerkleTree& run_a,
                                                     const MerkleTree& run_b) {
  return compare_leaves_bruteforce(TreeView(run_a), TreeView(run_b));
}

std::vector<bool> flagged_bitmap(std::span<const std::uint64_t> flagged,
                                 std::uint64_t num_chunks) {
  std::vector<bool> bitmap(static_cast<std::size_t>(num_chunks), false);
  for (const std::uint64_t chunk : flagged) {
    if (chunk < num_chunks) bitmap[static_cast<std::size_t>(chunk)] = true;
  }
  return bitmap;
}

}  // namespace repro::merkle
