#include "merkle/bundle.hpp"

#include "common/bytes.hpp"
#include "common/fs.hpp"
#include "merkle/flat.hpp"

namespace repro::merkle {

namespace {
constexpr std::uint32_t kMagic = 0x42524D52;  // "RMRB"
constexpr std::uint32_t kVersion = 1;
}  // namespace

repro::Status TreeBundle::add(std::string name, MerkleTree tree) {
  if (find(name) != nullptr) {
    return repro::already_exists("bundle already holds a tree named " + name);
  }
  entries_.emplace_back(std::move(name), std::move(tree));
  return repro::Status::ok();
}

const MerkleTree* TreeBundle::find(std::string_view name) const {
  for (const auto& [entry_name, tree] : entries_) {
    if (entry_name == name) return &tree;
  }
  return nullptr;
}

std::uint64_t TreeBundle::metadata_bytes() const noexcept {
  std::uint64_t total = 16;
  for (const auto& [name, tree] : entries_) {
    total += 8 + name.size() + tree.metadata_bytes();
  }
  return total;
}

std::vector<std::uint8_t> TreeBundle::serialize() const {
  // Exact output size, reserved once: no geometric regrowth while
  // appending, and no per-tree temporary buffers — each entry is encoded
  // straight into the shared writer.
  std::uint64_t total = 4 + 4 + 4;
  for (const auto& [name, tree] : entries_) {
    total += 4 + name.size() + 8 + tree.serialized_bytes();
  }
  std::vector<std::uint8_t> out;
  out.reserve(total);
  ByteWriter writer(out);
  writer.put_u32(kMagic);
  writer.put_u32(kVersion);
  writer.put_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, tree] : entries_) {
    writer.put_string(name);
    writer.put_u64(tree.serialized_bytes());
    tree.serialize_into(writer);
  }
  return out;
}

repro::Status TreeBundle::save(const std::filesystem::path& path) const {
  return repro::write_file(path, serialize())
      .with_context("saving merkle bundle");
}

repro::Result<TreeBundle> TreeBundle::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.get_u32());
  if (magic != kMagic) return repro::corrupt_data("bad bundle magic");
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t version, reader.get_u32());
  if (version != kVersion) {
    return repro::unsupported(
        "merkle bundle version " + std::to_string(version) +
        " (this build reads RMRB v1 and RMF2 v2); `repro-cli migrate` "
        "rewrites sidecars between supported formats");
  }
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t count, reader.get_u32());
  TreeBundle bundle;
  for (std::uint32_t i = 0; i < count; ++i) {
    REPRO_ASSIGN_OR_RETURN(std::string name, reader.get_string());
    REPRO_ASSIGN_OR_RETURN(const std::uint64_t tree_size, reader.get_u64());
    if (tree_size > reader.remaining()) {
      return repro::corrupt_data("bundle entry exceeds file size");
    }
    std::vector<std::uint8_t> tree_bytes(tree_size);
    REPRO_RETURN_IF_ERROR(reader.get_bytes(tree_bytes));
    REPRO_ASSIGN_OR_RETURN(MerkleTree tree,
                           MerkleTree::deserialize(tree_bytes));
    REPRO_RETURN_IF_ERROR(bundle.add(std::move(name), std::move(tree)));
  }
  return bundle;
}

repro::Result<TreeBundle> TreeBundle::load(
    const std::filesystem::path& path) {
  REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> bytes,
                         repro::read_file(path));
  // Compat shim: flat v2 sidecars are materialized tree by tree; anything
  // else goes to the legacy RMRB decoder (which reports bad magic itself).
  if (detect_sidecar_format(bytes) == SidecarFormat::kV2Flat) {
    REPRO_ASSIGN_OR_RETURN(const BundleView view, BundleView::parse(bytes));
    TreeBundle bundle;
    for (std::size_t i = 0; i < view.size(); ++i) {
      REPRO_ASSIGN_OR_RETURN(MerkleTree tree, view.tree(i).materialize());
      REPRO_RETURN_IF_ERROR(
          bundle.add(std::string(view.name(i)), std::move(tree)));
    }
    return bundle;
  }
  return deserialize(bytes);
}

}  // namespace repro::merkle
