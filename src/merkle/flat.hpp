// Sidecar format v2 ("RMF2"): flat, offset-based Merkle metadata laid out
// for mapping, not parsing.
//
// The v1 codecs (tree.cpp / bundle.cpp) parse byte streams into heap node
// vectors, so every load — even a warm service cache hit used to — pays
// O(nodes) decode work and allocator traffic. v2 stores the same content as
// a fixed little-endian layout that is *used in place*: a header, a section
// table, and 8-byte-aligned checksummed sections holding fixed-size tree
// records, a name blob, and the raw digest array. Readers are non-owning
// views over `const std::uint8_t*`; every multi-byte access goes through a
// memcpy helper, so views are alignment- and strict-aliasing-safe on any
// byte span (mapped, heap, or mid-buffer).
//
//   offset 0                      FlatHeader (32 bytes)
//   offset 32                     section table: section_count x 32 bytes
//   8-aligned                     sections (zero padding between)
//
// Sections (ids in SectionId; lengths are unpadded, checksums are the low
// word of Murmur3F over the section bytes seeded with the section id):
//   kTreeTable   u32 tree_count, u32 pad, tree_count x TreeRecord (72 B)
//   kNames       concatenated name bytes (records hold offset + length)
//   kNodes       digests, 16 bytes each {u64 lo, u64 hi}, all trees
//                concatenated (records hold byte offsets into this section)
//
// A single-tree `.rmrk` sidecar is the one-entry case with an empty name; a
// per-field bundle stores one record per field. v1 files remain readable
// through the compat shims (MerkleTree::load / TreeBundle::load detect the
// magic and fall back to the legacy deserializers); `repro-cli migrate`
// rewrites between formats. See docs/FORMATS.md.
#pragma once

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "io/mmap.hpp"
#include "merkle/bundle.hpp"
#include "merkle/tree.hpp"

namespace repro::merkle {

inline constexpr std::uint32_t kFlatMagic = 0x32464D52;  // "RMF2"
inline constexpr std::uint32_t kFlatVersion = 2;
inline constexpr std::uint64_t kFlatSectionAlign = 8;
inline constexpr std::uint32_t kDeltaMagic = 0x44464D52;  // "RMFD"
inline constexpr std::uint32_t kDeltaVersion = 1;

enum class SectionId : std::uint32_t {
  kTreeTable = 1,
  kNames = 2,
  kNodes = 3,
  kDelta = 4,  ///< "RMFD" differential payload; skippable by older readers
};

/// One decoded section-table row (exposed by `repro-cli info`).
struct SectionInfo {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint64_t checksum = 0;
};

/// Which on-disk encoding a sidecar byte blob carries.
enum class SidecarFormat : std::uint8_t {
  kUnknown = 0,
  kV1Tree,    ///< "RMRK" legacy single tree
  kV1Bundle,  ///< "RMRB" legacy named-tree bundle
  kV2Flat,    ///< "RMF2" flat mmap-able layout (tree or bundle)
};

SidecarFormat detect_sidecar_format(
    std::span<const std::uint8_t> bytes) noexcept;
std::string_view sidecar_format_name(SidecarFormat format) noexcept;

/// One changed node of a differential sidecar: flat-layout index + digest.
struct DeltaNode {
  std::uint64_t index = 0;
  hash::Digest128 digest;

  friend bool operator==(const DeltaNode&, const DeltaNode&) = default;
};

/// The payload of an RMFD section: the Merkle nodes whose digest changed
/// between `base_iteration` and `iteration`, plus the full tree geometry so
/// a resolver can validate a chain link without opening its base first.
/// Entries are sorted strictly ascending by node index; the set is closed
/// under ancestry (a changed leaf's dirtied root path is included), so
/// applying a delta onto its base yields an internally consistent tree.
struct TreeDelta {
  std::uint64_t iteration = 0;
  std::uint64_t base_iteration = 0;
  TreeParams params;
  std::uint64_t data_bytes = 0;
  std::uint64_t num_leaves = 0;
  std::vector<DeltaNode> nodes;

  /// Encoded RMFD section payload size (72-byte header + 24 B per entry).
  [[nodiscard]] std::uint64_t encoded_bytes() const noexcept {
    return 72 + nodes.size() * 24;
  }
  /// Chunk indices of the leaf-level entries (ascending) — the changed
  /// chunks this iteration, for incremental timeline walks.
  [[nodiscard]] std::vector<std::uint64_t> changed_chunks() const;
};

/// Non-owning zero-copy accessor over one tree of a flat sidecar. Behaves
/// like a read-only MerkleTree (same accessor names) but performs no parse
/// and owns no storage: node() memcpys one 16-byte digest out of the backing
/// bytes on demand. The backing blob must outlive the view — owning callers
/// hold a MappedBundle (below) or the MerkleTree the view aliases.
class TreeView {
 public:
  TreeView() = default;

  /// View over an in-memory tree's node array (LE hosts lay Digest128 out
  /// exactly as the flat nodes section does). Lets one compare/BFS
  /// implementation serve both decoded trees and mapped sidecars.
  explicit TreeView(const MerkleTree& tree) noexcept
      : params_(tree.params()),
        layout_(tree.layout()),
        data_bytes_(tree.data_bytes()),
        nodes_(reinterpret_cast<const std::uint8_t*>(tree.nodes().data())) {}

  [[nodiscard]] bool valid() const noexcept { return nodes_ != nullptr; }
  [[nodiscard]] const TreeParams& params() const noexcept { return params_; }
  [[nodiscard]] const TreeLayout& layout() const noexcept { return layout_; }
  [[nodiscard]] std::uint64_t data_bytes() const noexcept {
    return data_bytes_;
  }
  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return layout_.num_leaves;
  }

  [[nodiscard]] hash::Digest128 node(std::uint64_t index) const noexcept {
    hash::Digest128 digest;
    std::memcpy(&digest, nodes_ + index * hash::kDigestBytes,
                hash::kDigestBytes);
    return digest;
  }
  [[nodiscard]] hash::Digest128 root() const noexcept { return node(0); }
  [[nodiscard]] hash::Digest128 leaf(std::uint64_t chunk) const noexcept {
    return node(layout_.leaf_node(chunk));
  }

  /// Byte range of chunk `i` within the covered data.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> chunk_range(
      std::uint64_t chunk) const noexcept {
    const std::uint64_t begin = chunk * params_.chunk_bytes;
    const std::uint64_t end =
        std::min(begin + params_.chunk_bytes, data_bytes_);
    return {begin, end};
  }

  /// Metadata footprint of this tree (digest bytes + fixed record).
  [[nodiscard]] std::uint64_t metadata_bytes() const noexcept {
    return 72 + layout_.num_nodes() * hash::kDigestBytes;
  }

  /// Copy out an owning MerkleTree (the v2 -> v1 compat direction; also
  /// used where a caller genuinely needs mutable nodes, e.g. DeltaStore).
  [[nodiscard]] repro::Result<MerkleTree> materialize() const;

 private:
  friend class BundleView;

  TreeParams params_;
  TreeLayout layout_;
  std::uint64_t data_bytes_ = 0;
  const std::uint8_t* nodes_ = nullptr;
};

/// Non-owning accessor over a whole flat sidecar: header + section table +
/// per-tree views. parse() validates structure (magic, version, section
/// bounds, alignment, per-tree record consistency) and, by default, the
/// per-section checksums; after that every access is offset arithmetic.
class BundleView {
 public:
  BundleView() = default;

  /// Parse and validate `bytes` (which the caller keeps alive). Checksum
  /// verification is one Murmur3F pass per section — cheap relative to a v1
  /// decode, but skippable for hot in-process paths that just built the
  /// blob themselves.
  static repro::Result<BundleView> parse(std::span<const std::uint8_t> bytes,
                                         bool verify_checksums = true);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::string_view name(std::size_t i) const noexcept {
    return entries_[i].name;
  }
  [[nodiscard]] const TreeView& tree(std::size_t i) const noexcept {
    return entries_[i].view;
  }
  [[nodiscard]] const TreeView* find(std::string_view name) const noexcept;

  [[nodiscard]] const std::vector<SectionInfo>& sections() const noexcept {
    return sections_;
  }
  /// Total bytes of the underlying blob.
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    return total_bytes_;
  }

  /// True when the sidecar carries an RMFD differential section. A
  /// delta-only sidecar has has_delta() && size() == 0; an anchor written
  /// with its delta has both the full tree table and the section.
  [[nodiscard]] bool has_delta() const noexcept {
    return delta_bytes_ != nullptr;
  }
  /// Decode and validate the RMFD section. Errors (never crashes) on a
  /// truncated, misdeclared, or unsorted payload.
  [[nodiscard]] repro::Result<TreeDelta> delta() const;

 private:
  struct Entry {
    std::string_view name;  ///< points into the backing names section
    TreeView view;
  };

  std::vector<Entry> entries_;
  std::vector<SectionInfo> sections_;
  std::uint64_t total_bytes_ = 0;
  const std::uint8_t* delta_bytes_ = nullptr;  ///< RMFD section payload
  std::uint64_t delta_length_ = 0;
};

/// Writes flat sidecars. Computes the exact output size up front and fills
/// one allocation — no geometric regrowth, no per-tree temporaries.
class FlatBuilder {
 public:
  /// Add a named tree; names must be unique. A single-tree sidecar is one
  /// entry with an empty name.
  repro::Status add(std::string name, const MerkleTree& tree);

  /// Attach an RMFD differential section to the output. Valid with zero
  /// entries (a delta-only sidecar: old readers parse the empty tree table
  /// and skip the section) or alongside a full tree (an anchor that also
  /// records what changed since its base).
  void set_delta(TreeDelta delta) { delta_ = std::move(delta); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  /// Exact byte size finish() will produce for the current entries.
  [[nodiscard]] std::uint64_t output_bytes() const noexcept;
  [[nodiscard]] std::vector<std::uint8_t> finish() const;

 private:
  struct Entry {
    std::string name;
    const MerkleTree* tree;  ///< caller keeps the tree alive until finish()
  };
  std::vector<Entry> entries_;
  std::optional<TreeDelta> delta_;
};

/// Single-tree / bundle conveniences (what v2-writing call sites use).
std::vector<std::uint8_t> flat_serialize(const MerkleTree& tree);
std::vector<std::uint8_t> flat_serialize(const TreeBundle& bundle);
/// Delta-only differential sidecar: empty tree table + RMFD section.
std::vector<std::uint8_t> flat_serialize_delta(const TreeDelta& delta);
repro::Status save_flat(const MerkleTree& tree,
                        const std::filesystem::path& path);
repro::Status save_flat(const TreeBundle& bundle,
                        const std::filesystem::path& path);
repro::Status save_flat_delta(const TreeDelta& delta,
                              const std::filesystem::path& path);

/// Which encoding sidecar writers emit. v2 is the default everywhere; v1
/// remains writable so compat fixtures and downgrade migrations exist.
enum class SidecarWriteFormat : std::uint8_t { kFlatV2 = 0, kLegacyV1 = 1 };

repro::Status save_sidecar(const MerkleTree& tree,
                           const std::filesystem::path& path,
                           SidecarWriteFormat format);

/// Owning handle over a sidecar's bytes plus its parsed BundleView: the
/// value type of the service metadata cache and of every zero-copy load
/// path. open() prefers mmap (page-cache backed, shareable read-only across
/// processes) and degrades to a heap read when mapping fails; v1 files are
/// transparently converted through the legacy deserializers into a
/// heap-backed v2 blob, so downstream code sees exactly one representation.
class MappedBundle {
 public:
  MappedBundle() = default;
  MappedBundle(MappedBundle&&) = default;
  MappedBundle& operator=(MappedBundle&&) = default;
  MappedBundle(const MappedBundle&) = delete;
  MappedBundle& operator=(const MappedBundle&) = delete;

  static repro::Result<MappedBundle> open(const std::filesystem::path& path);
  /// Adopt an in-memory blob (either format; v1 is converted).
  static repro::Result<MappedBundle> from_bytes(
      std::vector<std::uint8_t> bytes);

  [[nodiscard]] const BundleView& view() const noexcept { return view_; }
  /// The raw flat-v2 bytes backing the views (mapped or heap; a converted
  /// v1 source is already re-encoded). What `repro-cli migrate` writes out.
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return region_.mapped() ? region_.bytes()
                            : std::span<const std::uint8_t>(heap_);
  }
  /// The single tree of a plain `.rmrk` sidecar; errors when the sidecar
  /// holds several named trees (use view() for those).
  [[nodiscard]] repro::Result<TreeView> sole_tree() const;

  /// True when the bytes are an active file mapping (zero-copy path).
  [[nodiscard]] bool mapped() const noexcept { return region_.mapped(); }
  /// True when the source was a v1 sidecar that had to be deserialized.
  [[nodiscard]] bool converted_from_v1() const noexcept { return converted_; }
  /// Resident footprint: mapped or heap-held bytes backing the views.
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return region_.mapped() ? region_.size() : heap_.size();
  }

 private:
  static repro::Result<MappedBundle> adopt(MappedBundle bundle,
                                           std::span<const std::uint8_t> raw);

  io::MmapRegion region_;           ///< set when mapped
  std::vector<std::uint8_t> heap_;  ///< set on fallback / conversion
  BundleView view_;
  bool converted_ = false;
};

}  // namespace repro::merkle
