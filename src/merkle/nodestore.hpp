// Content-addressed Merkle node store + differential sidecar resolution.
//
// Consecutive checkpoints share almost all subtrees, so storing one full
// sidecar per iteration duplicates the stable fraction of the tree every
// time. The NodeStore counts references per distinct node digest, which
// makes the dedup arithmetic exact: metadata cost grows with divergence,
// not with iterations. The free functions compute/apply the RMFD deltas
// (merkle/flat.hpp) that carry only the changed subtrees between
// iterations, and resolve a chain of differential sidecars back into a
// materialized tree starting from the nearest full-tree anchor.
#pragma once

#include <cstdint>
#include <filesystem>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "hash/digest.hpp"
#include "merkle/flat.hpp"
#include "merkle/tree.hpp"

namespace repro::merkle {

/// Refcounted set of distinct node digests. Insertion is content-addressed:
/// a digest seen before only bumps its refcount, so `unique_bytes()` is the
/// deduplicated metadata footprint while `total_refs * kDigestBytes` is what
/// full-per-iteration sidecars would have stored.
class NodeStore {
 public:
  struct Stats {
    std::uint64_t unique_nodes = 0;  ///< digests currently stored
    std::uint64_t total_refs = 0;    ///< live references across all digests
    std::uint64_t inserts = 0;       ///< insert() calls ever made
    std::uint64_t deduped = 0;       ///< inserts that hit an existing digest

    [[nodiscard]] std::uint64_t unique_bytes() const noexcept {
      return unique_nodes * hash::kDigestBytes;
    }
    [[nodiscard]] double dedup_ratio() const noexcept {
      return unique_nodes > 0
                 ? static_cast<double>(total_refs) /
                       static_cast<double>(unique_nodes)
                 : 1.0;
    }
  };

  /// Add one reference; returns true when the digest was not stored before.
  bool insert(const hash::Digest128& digest);

  /// Add one reference per digest; returns how many were new.
  std::uint64_t insert_all(std::span<const hash::Digest128> digests);

  /// Drop one reference; returns true when the last reference was removed.
  /// Releasing an unknown digest is a no-op returning false.
  bool release(const hash::Digest128& digest);

  [[nodiscard]] std::uint64_t refcount(const hash::Digest128& digest) const;
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return refs_.size(); }

 private:
  struct DigestHash {
    std::size_t operator()(const hash::Digest128& d) const noexcept {
      // Digests are already uniform hashes; fold hi into lo for the bucket.
      return static_cast<std::size_t>(d.lo ^ (d.hi * 0x9E3779B97F4A7C15ULL));
    }
  };
  std::unordered_map<hash::Digest128, std::uint64_t, DigestHash> refs_;
  Stats stats_;
};

/// Node indices dirtied by the given sorted chunk list: every listed leaf
/// plus all its ancestors up to the root, deduplicated and sorted ascending.
[[nodiscard]] std::vector<std::uint64_t> dirty_node_indices(
    const TreeLayout& layout, std::span<const std::uint64_t> changed_chunks);

/// Delta between two trees over the same layout/params: every node whose
/// digest differs. O(nodes) digest compares.
repro::Result<TreeDelta> compute_tree_delta(const MerkleTree& base,
                                            const MerkleTree& next,
                                            std::uint64_t base_iteration,
                                            std::uint64_t iteration);

/// Same, but comparing only `candidates` (sorted node indices) — callers
/// that already know which subtrees an update touched (dirty_node_indices)
/// get O(k log n) instead of O(n).
repro::Result<TreeDelta> compute_tree_delta(
    const MerkleTree& base, const MerkleTree& next,
    std::span<const std::uint64_t> candidates, std::uint64_t base_iteration,
    std::uint64_t iteration);

/// Reconstruct the tree at `delta.iteration` from the tree at
/// `delta.base_iteration`. Layout and params must match the delta header.
repro::Result<MerkleTree> apply_tree_delta(const MerkleTree& base,
                                           const TreeDelta& delta);

/// How a sidecar chain resolved (and what the svc cache keys on).
struct ChainInfo {
  bool differential = false;        ///< true when any RMFD hop was replayed
  std::uint64_t anchor_iteration = 0;  ///< iteration of the full-tree anchor
  std::uint64_t chain_length = 0;      ///< deltas applied on top of anchor
};

/// Load the tree a sidecar describes, following differential links: a file
/// holding a full tree resolves immediately; a delta-only file loads its
/// base sidecar (`iter<base_iteration>.rmrk` next to it) and replays the
/// chain, bounded by the strictly-decreasing base iterations. `info`, when
/// non-null, receives the anchor/chain shape.
repro::Result<MerkleTree> resolve_delta_chain(const std::filesystem::path& path,
                                              ChainInfo* info = nullptr);

/// Chain shape without materializing any tree: parses only headers/RMFD
/// sections along the chain. Cheap enough for cache-key computation.
repro::Result<ChainInfo> probe_delta_chain(const std::filesystem::path& path);

}  // namespace repro::merkle
