// Named-tree bundles ("RMRB" format): one Merkle tree per checkpoint field
// in a single metadata file.
//
// The paper's runtime treats a checkpoint as one typed array under one error
// bound. In practice domain experts hold *per-variable* tolerances — a
// cosmologist may accept 1e-4 on velocities but demand 1e-6 on positions.
// A bundle stores an independently parameterized tree per field, enabling
// per-field bounds (src/compare/fields.hpp) while keeping the one-sidecar-
// per-checkpoint layout.
#pragma once

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "merkle/tree.hpp"

namespace repro::merkle {

class TreeBundle {
 public:
  TreeBundle() = default;

  /// Add a named tree; names must be unique within the bundle.
  repro::Status add(std::string name, MerkleTree tree);

  [[nodiscard]] const MerkleTree* find(std::string_view name) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] const std::vector<std::pair<std::string, MerkleTree>>&
  entries() const noexcept {
    return entries_;
  }

  [[nodiscard]] std::uint64_t metadata_bytes() const noexcept;

  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  repro::Status save(const std::filesystem::path& path) const;
  static repro::Result<TreeBundle> deserialize(
      std::span<const std::uint8_t> bytes);
  static repro::Result<TreeBundle> load(const std::filesystem::path& path);

 private:
  std::vector<std::pair<std::string, MerkleTree>> entries_;
};

}  // namespace repro::merkle
