#include "merkle/tree.hpp"

#include <cstring>

#include "common/fs.hpp"
#include "common/timer.hpp"
#include "hash/murmur3.hpp"
#include "merkle/flat.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace repro::merkle {

namespace {
constexpr std::uint32_t kMagic = 0x4B524D52;  // "RMRK"
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::uint32_t value_size(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kF32: return 4;
    case ValueKind::kF64: return 8;
    case ValueKind::kBytes: return 1;
  }
  return 1;
}

std::string_view value_kind_name(ValueKind kind) noexcept {
  switch (kind) {
    case ValueKind::kF32: return "f32";
    case ValueKind::kF64: return "f64";
    case ValueKind::kBytes: return "bytes";
  }
  return "?";
}

repro::Status validate(const TreeParams& params) {
  if (params.chunk_bytes == 0) {
    return repro::invalid_argument("chunk_bytes must be > 0");
  }
  if (params.chunk_bytes % value_size(params.value_kind) != 0) {
    return repro::invalid_argument(
        "chunk_bytes must be a multiple of the value size");
  }
  return hash::validate(params.hash);
}

hash::Digest128 padding_digest() noexcept {
  // Any fixed constant works as long as both runs use the same one; derive
  // it from a tag string so it cannot collide with Digest{seed,seed} of an
  // empty real chunk.
  static const hash::Digest128 digest = [] {
    const char tag[] = "reprokit-merkle-padding-leaf";
    return hash::murmur3f(
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(tag), sizeof(tag) - 1),
        0x5eedu);
  }();
  return digest;
}

std::uint64_t MerkleTree::metadata_bytes() const noexcept {
  // Header fields (see serialize()) + digests.
  return 64 + layout_.num_nodes() * hash::kDigestBytes;
}

std::uint64_t MerkleTree::serialized_bytes() const noexcept {
  // Field-by-field sum of the v1 header (see serialize_into) + digests.
  return 4 + 4 + 8 + 8 + 1 + 8 + 4 + 8 + 8 +
         nodes_.size() * hash::kDigestBytes;
}

std::vector<std::uint8_t> MerkleTree::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(serialized_bytes());
  ByteWriter writer(out);
  serialize_into(writer);
  return out;
}

void MerkleTree::serialize_into(ByteWriter& writer) const {
  writer.put_u32(kMagic);
  writer.put_u32(kVersion);
  writer.put_u64(data_bytes_);
  writer.put_u64(params_.chunk_bytes);
  writer.put_u8(static_cast<std::uint8_t>(params_.value_kind));
  writer.put_f64(params_.hash.error_bound);
  writer.put_u32(params_.hash.values_per_block);
  writer.put_u64(layout_.num_leaves);
  writer.put_u64(nodes_.size());
  for (const auto& digest : nodes_) {
    writer.put_u64(digest.lo);
    writer.put_u64(digest.hi);
  }
}

repro::Status MerkleTree::save(const std::filesystem::path& path) const {
  const auto bytes = serialize();
  return repro::write_file(path, bytes)
      .with_context("saving merkle metadata");
}

repro::Result<MerkleTree> MerkleTree::deserialize(
    std::span<const std::uint8_t> bytes) {
  ByteReader reader(bytes);
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.get_u32());
  if (magic != kMagic) {
    return repro::corrupt_data("bad merkle metadata magic");
  }
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t version, reader.get_u32());
  if (version != kVersion) {
    return repro::unsupported(
        "merkle metadata version " + std::to_string(version) +
        " (this build reads RMRK v1 and RMF2 v2); `repro-cli migrate` "
        "rewrites sidecars between supported formats");
  }
  MerkleTree tree;
  REPRO_ASSIGN_OR_RETURN(tree.data_bytes_, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(tree.params_.chunk_bytes, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(const std::uint8_t kind, reader.get_u8());
  if (kind > static_cast<std::uint8_t>(ValueKind::kBytes)) {
    return repro::corrupt_data("bad value kind in merkle metadata");
  }
  tree.params_.value_kind = static_cast<ValueKind>(kind);
  REPRO_ASSIGN_OR_RETURN(tree.params_.hash.error_bound, reader.get_f64());
  REPRO_ASSIGN_OR_RETURN(tree.params_.hash.values_per_block, reader.get_u32());
  std::uint64_t num_leaves = 0;
  REPRO_ASSIGN_OR_RETURN(num_leaves, reader.get_u64());
  // Untrusted input: an absurd leaf count would overflow the layout math
  // (and ask for an absurd allocation below) before the node-count check.
  if (num_leaves > (std::uint64_t{1} << 50)) {
    return repro::corrupt_data("implausible leaf count in merkle metadata");
  }
  tree.layout_ = TreeLayout::for_leaves(num_leaves);
  REPRO_ASSIGN_OR_RETURN(const std::uint64_t num_nodes, reader.get_u64());
  if (num_nodes != tree.layout_.num_nodes()) {
    return repro::corrupt_data("node count inconsistent with leaf count");
  }
  // The digests must actually fit in the remaining payload; checking before
  // the resize keeps a crafted header from forcing a huge allocation.
  if (num_nodes > reader.remaining() / hash::kDigestBytes) {
    return repro::corrupt_data("merkle metadata truncated");
  }
  REPRO_RETURN_IF_ERROR(validate(tree.params_));
  tree.nodes_.resize(num_nodes);
  for (auto& digest : tree.nodes_) {
    REPRO_ASSIGN_OR_RETURN(digest.lo, reader.get_u64());
    REPRO_ASSIGN_OR_RETURN(digest.hi, reader.get_u64());
  }
  return tree;
}

repro::Result<MerkleTree> MerkleTree::load(
    const std::filesystem::path& path) {
  REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> bytes,
                         repro::read_file(path));
  if (detect_sidecar_format(bytes) == SidecarFormat::kV2Flat) {
    REPRO_ASSIGN_OR_RETURN(const BundleView view, BundleView::parse(bytes));
    if (view.size() != 1) {
      return repro::failed_precondition(
          path.string() + " holds " + std::to_string(view.size()) +
          " named trees; load it as a bundle");
    }
    return view.tree(0).materialize();
  }
  return deserialize(bytes);
}

repro::Result<MerkleTree> MerkleTree::from_parts(
    TreeParams params, std::uint64_t data_bytes, std::uint64_t num_leaves,
    std::vector<hash::Digest128> nodes) {
  REPRO_RETURN_IF_ERROR(validate(params));
  MerkleTree tree;
  tree.params_ = std::move(params);
  tree.data_bytes_ = data_bytes;
  tree.layout_ = TreeLayout::for_leaves(num_leaves);
  if (nodes.size() != tree.layout_.num_nodes()) {
    return repro::invalid_argument(
        "node count inconsistent with leaf count");
  }
  tree.nodes_ = std::move(nodes);
  return tree;
}

hash::Digest128 TreeBuilder::hash_chunk(std::span<const std::uint8_t> data,
                                        const MerkleTree& tree,
                                        std::uint64_t chunk) const {
  const auto [begin, end] = tree.chunk_range(chunk);
  const std::uint8_t* base = data.data() + begin;
  const std::uint64_t bytes = end - begin;
  const std::uint32_t vsize = value_size(params_.value_kind);
  switch (params_.value_kind) {
    case ValueKind::kF32:
      return hash::hash_chunk_f32(
          std::span<const float>(reinterpret_cast<const float*>(base),
                                 bytes / vsize),
          params_.hash);
    case ValueKind::kF64:
      return hash::hash_chunk_f64(
          std::span<const double>(reinterpret_cast<const double*>(base),
                                  bytes / vsize),
          params_.hash);
    case ValueKind::kBytes:
      return hash::hash_chunk_bytes(std::span<const std::uint8_t>(base, bytes),
                                    params_.hash.values_per_block * 4);
  }
  return {};
}

repro::Result<MerkleTree> TreeBuilder::build(
    std::span<const std::uint8_t> data) const {
  REPRO_RETURN_IF_ERROR(validate(params_));

  MerkleTree tree;
  tree.params_ = params_;
  tree.data_bytes_ = data.size();
  const std::uint64_t num_chunks =
      data.empty() ? 0 : repro::ceil_div(data.size(), params_.chunk_bytes);

  auto& registry = telemetry::MetricsRegistry::global();
  static telemetry::Counter& builds = registry.counter("merkle.build.count");
  static telemetry::Counter& build_bytes =
      registry.counter("merkle.build.bytes");
  static telemetry::Counter& build_chunks =
      registry.counter("merkle.build.chunks");
  static telemetry::Histogram& build_seconds = registry.histogram(
      "merkle.build.seconds", telemetry::latency_buckets_seconds());
  builds.increment();
  build_bytes.add(data.size());
  build_chunks.add(num_chunks);
  repro::Stopwatch build_watch;
  telemetry::TraceSpan build_span("merkle.build");
  build_span.arg("bytes", static_cast<std::uint64_t>(data.size()))
      .arg("chunks", num_chunks);

  tree.layout_ = TreeLayout::for_leaves(num_chunks);
  tree.nodes_.assign(tree.layout_.num_nodes(), padding_digest());

  const TreeLayout& layout = tree.layout_;
  auto* nodes = tree.nodes_.data();

  // Leaf level: every chunk hashed independently (Algorithm 1, first loop).
  // Dynamically claimed: a short final chunk or NaN-heavy slow-path chunks
  // would otherwise convoy the statically partitioned workers.
  exec_.for_each_dynamic(0, num_chunks, leaf_grain_, [&](std::uint64_t chunk) {
    nodes[layout.leaf_node(chunk)] = hash_chunk(data, tree, chunk);
  });

  // Internal levels, bottom-up; nodes within a level are independent
  // (Algorithm 1, second loop — synchronization only between levels).
  for (std::uint32_t level = layout.depth; level-- > 0;) {
    const std::uint64_t begin = TreeLayout::level_begin(level);
    const std::uint64_t end = TreeLayout::level_end(level);
    exec_.for_each(begin, end, [&](std::uint64_t node_index) {
      hash::Digest128 pair[2] = {nodes[TreeLayout::left_child(node_index)],
                                 nodes[TreeLayout::right_child(node_index)]};
      nodes[node_index] = hash::murmur3f(
          std::span<const std::uint8_t>(
              reinterpret_cast<const std::uint8_t*>(pair), sizeof pair));
    });
  }

  build_seconds.record(build_watch.seconds());
  return tree;
}

repro::Status TreeBuilder::update_leaves(
    MerkleTree& tree, std::span<const std::uint8_t> data,
    std::span<const std::uint64_t> changed_chunks) const {
  REPRO_RETURN_IF_ERROR(validate(params_));
  if (tree.params_ != params_) {
    return repro::failed_precondition(
        "tree was built with different parameters");
  }
  if (tree.data_bytes_ != data.size()) {
    return repro::failed_precondition(
        "incremental update cannot change the data size");
  }
  const TreeLayout& layout = tree.layout_;
  for (const std::uint64_t chunk : changed_chunks) {
    if (chunk >= layout.num_leaves) {
      return repro::out_of_range("changed chunk " + std::to_string(chunk) +
                                 " outside the tree");
    }
  }
  auto* nodes = tree.nodes_.data();

  // Rehash the dirty leaves in parallel (dynamically claimed — dirty sets
  // mix full and tail chunks, so per-leaf cost is uneven).
  exec_.for_each_dynamic(
      0, changed_chunks.size(), leaf_grain_, [&](std::uint64_t i) {
        const std::uint64_t chunk = changed_chunks[i];
        nodes[layout.leaf_node(chunk)] = hash_chunk(data, tree, chunk);
      });

  // Propagate upward level by level. The dirty frontier only shrinks, so a
  // simple dedup per level keeps the work at O(k) nodes per level.
  std::vector<std::uint64_t> dirty;
  dirty.reserve(changed_chunks.size());
  for (const std::uint64_t chunk : changed_chunks) {
    dirty.push_back(layout.leaf_node(chunk));
  }
  while (!dirty.empty() && dirty.front() != 0) {
    std::vector<std::uint64_t> parents;
    parents.reserve(dirty.size());
    for (const std::uint64_t node : dirty) {
      const std::uint64_t parent = TreeLayout::parent(node);
      if (parents.empty() || parents.back() != parent) {
        parents.push_back(parent);  // input sorted => parents sorted
      }
    }
    exec_.for_each(0, parents.size(), [&](std::uint64_t i) {
      const std::uint64_t node = parents[i];
      hash::Digest128 pair[2] = {nodes[TreeLayout::left_child(node)],
                                 nodes[TreeLayout::right_child(node)]};
      nodes[node] = hash::murmur3f(std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(pair), sizeof pair));
    });
    dirty = std::move(parents);
  }
  return repro::Status::ok();
}

}  // namespace repro::merkle
