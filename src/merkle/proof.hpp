// Merkle inclusion proofs.
//
// The CI-gate use case (paper Section 5) stores golden metadata and compares
// whole trees. Inclusion proofs push that further: with only the golden
// *root* (16 bytes) pinned — in a build file, a signed release note, a
// database row — any party holding the checkpoint can later prove or check
// that one specific chunk belonged to the blessed state, without the full
// metadata. This is the classic Merkle audit-path mechanism (BitTorrent,
// Cassandra anti-entropy) applied to error-bounded scientific data.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "hash/digest.hpp"
#include "merkle/tree.hpp"

namespace repro::merkle {

/// Audit path for one chunk: the sibling digest at every level from the
/// leaf up to (excluding) the root, plus enough context to recompute and
/// compare.
struct InclusionProof {
  std::uint64_t chunk = 0;
  /// Digest of the chunk's data under the tree's hash params.
  hash::Digest128 leaf;
  /// Sibling digests, deepest first (leaf's sibling ... root's child's
  /// sibling). Bit i of `chunk-path` — whether our node was a left or right
  /// child — is recomputed from the leaf index, so only digests are stored.
  std::vector<hash::Digest128> siblings;
  /// Tree shape, needed to recompute child order during verification.
  std::uint64_t num_leaves = 0;

  /// Serialized size: ~16 bytes per tree level.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
  static repro::Result<InclusionProof> deserialize(
      std::span<const std::uint8_t> bytes);
};

/// Extract the proof for `chunk` from a full tree.
repro::Result<InclusionProof> prove_inclusion(const MerkleTree& tree,
                                              std::uint64_t chunk);

/// Recompute the root from the proof and compare against `expected_root`.
/// Returns OK if the proof binds (leaf, chunk) to the root; kFailedPrecondition
/// if the recomputed root differs; kInvalidArgument for malformed proofs.
repro::Status verify_inclusion(const InclusionProof& proof,
                               const hash::Digest128& expected_root);

/// Convenience: hash `chunk_data` under `params` and verify it against the
/// root via the proof — the "does this piece of data belong to the blessed
/// checkpoint?" one-call form.
repro::Status verify_chunk_data(const InclusionProof& proof,
                                std::span<const std::uint8_t> chunk_data,
                                const TreeParams& params,
                                const hash::Digest128& expected_root);

}  // namespace repro::merkle
