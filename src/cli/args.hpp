// Tiny flag parser for repro-cli: positional arguments plus --flag value /
// --flag=value pairs, with typed accessors.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace repro::cli {

class Args {
 public:
  static repro::Result<Args> parse(int argc, const char* const* argv);

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] bool has(const std::string& flag) const {
    return flags_.contains(flag);
  }

  [[nodiscard]] std::string get(const std::string& flag,
                                std::string fallback) const;
  [[nodiscard]] repro::Result<std::uint64_t> get_u64(
      const std::string& flag, std::uint64_t fallback) const;
  [[nodiscard]] repro::Result<double> get_f64(const std::string& flag,
                                              double fallback) const;
  /// Accepts size suffixes ("4K", "64K", "1M").
  [[nodiscard]] repro::Result<std::uint64_t> get_size(
      const std::string& flag, std::uint64_t fallback) const;
  /// Comma-separated u64 list.
  [[nodiscard]] repro::Result<std::vector<std::uint64_t>> get_u64_list(
      const std::string& flag, std::vector<std::uint64_t> fallback) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

}  // namespace repro::cli
