#include "cli/args.hpp"

#include <charconv>

#include "common/bytes.hpp"

namespace repro::cli {

repro::Result<Args> Args::parse(int argc, const char* const* argv) {
  Args args;
  for (int i = 0; i < argc; ++i) {
    const std::string token = argv[i];
    if (!token.starts_with("--")) {
      args.positional_.push_back(token);
      continue;
    }
    const std::string body = token.substr(2);
    if (body.empty()) {
      return repro::invalid_argument("bare '--' is not a valid flag");
    }
    const auto equals = body.find('=');
    if (equals != std::string::npos) {
      args.flags_[body.substr(0, equals)] = body.substr(equals + 1);
      continue;
    }
    // "--flag value" unless the next token is another flag (then boolean).
    if (i + 1 < argc && std::string_view{argv[i + 1]}.substr(0, 2) != "--") {
      args.flags_[body] = argv[++i];
    } else {
      args.flags_[body] = "true";
    }
  }
  return args;
}

std::string Args::get(const std::string& flag, std::string fallback) const {
  const auto it = flags_.find(flag);
  return it == flags_.end() ? std::move(fallback) : it->second;
}

repro::Result<std::uint64_t> Args::get_u64(const std::string& flag,
                                           std::uint64_t fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      it->second.data(), it->second.data() + it->second.size(), value);
  if (ec != std::errc{} || ptr != it->second.data() + it->second.size()) {
    return repro::invalid_argument("--" + flag + " expects an integer, got '" +
                                   it->second + "'");
  }
  return value;
}

repro::Result<double> Args::get_f64(const std::string& flag,
                                    double fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) {
      return repro::invalid_argument("--" + flag + " expects a number");
    }
    return value;
  } catch (const std::exception&) {
    return repro::invalid_argument("--" + flag + " expects a number, got '" +
                                   it->second + "'");
  }
}

repro::Result<std::uint64_t> Args::get_size(const std::string& flag,
                                            std::uint64_t fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  return repro::parse_size(it->second);
}

repro::Result<std::vector<std::uint64_t>> Args::get_u64_list(
    const std::string& flag, std::vector<std::uint64_t> fallback) const {
  const auto it = flags_.find(flag);
  if (it == flags_.end()) return fallback;
  std::vector<std::uint64_t> values;
  std::size_t pos = 0;
  const std::string& text = it->second;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + pos, text.data() + comma, value);
    if (ec != std::errc{} || ptr != text.data() + comma) {
      return repro::invalid_argument("--" + flag +
                                     " expects comma-separated integers");
    }
    values.push_back(value);
    pos = comma + 1;
  }
  return values;
}

}  // namespace repro::cli
