// repro-cli: offline capture and comparison tool (the paper's contribution
// (2) exposes the runtime both as a library API and as a command line tool).
//
//   repro-cli simulate  --out DIR --run ID [--particles N --steps S ...]
//   repro-cli tree      CKPT [--chunk 64K --eps 1e-6 --out FILE.rmrk]
//   repro-cli compare   A.ckpt B.ckpt [--eps 1e-6 --backend uring ...]
//   repro-cli history   ROOT RUN_A RUN_B [--eps 1e-6 --stop-early]
//   repro-cli timeline  ROOT RUN_A RUN_B [--json --ansi --ledger-out F]
//   repro-cli inspect   FILE.(ckpt|rmrk)
//
// Exit codes follow the diff(1) convention so scripts can branch on the
// verdict: 0 = within bound, 1 = divergence found, 2 = usage or runtime
// error.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <map>
#include <string>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "baseline/allclose.hpp"
#include "baseline/direct.hpp"
#include "ckpt/capture.hpp"
#include "ckpt/delta_store.hpp"
#include "cli/args.hpp"
#include "common/bytes.hpp"
#include "common/fs.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "compare/comparator.hpp"
#include "compare/fields.hpp"
#include "diverge/ledger.hpp"
#include "diverge/timeline.hpp"
#include "merkle/compare.hpp"
#include "merkle/proof.hpp"
#include "sim/hacc_lite.hpp"
#include "merkle/nodestore.hpp"
#include "svc/client.hpp"
#include "svc/monitor.hpp"
#include "svc/router.hpp"
#include "svc/server.hpp"
#include "telemetry/json_parse.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/prometheus.hpp"
#include "telemetry/report.hpp"
#include "telemetry/resource_sampler.hpp"
#include "telemetry/trace.hpp"

namespace repro::cli {
namespace {

/// Set by run() when --metrics-out is present; commands enrich it with
/// their verdict, key numbers and phase timers. run() attaches the global
/// metrics snapshot and publishes the document after the command returns.
telemetry::RunReport* g_run_report = nullptr;

void print_usage() {
  std::puts(
      "repro-cli — scalable capture and comparison of intermediate "
      "multi-run results\n"
      "\n"
      "  repro-cli simulate --out DIR --run ID [--particles N] [--steps S]\n"
      "            [--mesh M] [--rank R] [--capture-every K]\n"
      "            [--noise-seed S] [--noise-start N] [--jitter X]\n"
      "            [--chunk 64K] [--eps 1e-6]\n"
      "      run the haccette mini-app, capturing checkpoints + metadata;\n"
      "      --noise-start delays nondeterminism until iteration N\n"
      "\n"
      "  repro-cli tree CKPT [--chunk 64K] [--eps 1e-6] [--block 4]\n"
      "            [--out FILE.rmrk] [--format v2|v1]\n"
      "      build Merkle metadata for an existing checkpoint (flat v2\n"
      "      sidecars by default; --format v1 writes the legacy encoding)\n"
      "\n"
      "  repro-cli compare A.ckpt B.ckpt [--eps 1e-6] [--chunk 64K]\n"
      "            [--backend uring|mmap|pread|threads] [--diffs N]\n"
      "            [--method ours|direct|allclose] [--ledger-out FILE]\n"
      "      compare two checkpoints within the error bound\n"
      "\n"
      "  every subcommand also accepts:\n"
      "    --trace-out PATH    write a Chrome trace-event JSON (Perfetto)\n"
      "                        with live resource counter samples (RSS,\n"
      "                        CPU, io_uring depth; --sample-period-ms P)\n"
      "    --metrics-out PATH  write a structured run report with the\n"
      "                        metrics snapshot, phase timers and verdict\n"
      "\n"
      "  repro-cli history ROOT RUN_A RUN_B [--eps 1e-6] [--stop-early]\n"
      "            [--ragged] [--ledger-out FILE]\n"
      "      compare two runs' checkpoint histories, report first "
      "divergence\n"
      "\n"
      "  repro-cli timeline ROOT RUN_A RUN_B [--eps 1e-6] [--json]\n"
      "            [--ansi] [--heatmap-width W] [--ledger-out FILE]\n"
      "      render an iteration x field divergence timeline with\n"
      "      chunk-space heatmaps (tolerates ragged histories)\n"
      "\n"
      "  repro-cli inspect FILE\n"
      "      print checkpoint or metadata file structure\n"
      "\n"
      "  repro-cli info SIDECAR\n"
      "      print a sidecar's detected format version, section table, and\n"
      "      per-tree summary (see docs/FORMATS.md)\n"
      "\n"
      "  repro-cli migrate SIDECAR [--to v2|v1] [--out FILE]\n"
      "      rewrite a sidecar between legacy v1 and flat v2 encodings\n"
      "      (atomic in-place rewrite unless --out is given)\n"
      "\n"
      "  repro-cli fields A.ckpt B.ckpt [--bounds X=1e-6,PHI=1e-2]\n"
      "            [--default-eps 1e-6] [--chunk 16K]\n"
      "      compare field by field under per-field error bounds\n"
      "\n"
      "  repro-cli prove CKPT --index I [--chunk 64K] [--eps 1e-6]\n"
      "            [--out FILE.rprf]\n"
      "      emit an inclusion proof for chunk I (prints the root to pin)\n"
      "\n"
      "  repro-cli verify PROOF.rprf CKPT --root HEX [--chunk 64K]\n"
      "            [--eps 1e-6]\n"
      "      check a chunk of CKPT against a pinned root via the proof\n"
      "\n"
      "  repro-cli delta append ROOT RUN RANK ITER CKPT [--chunk 64K]\n"
      "  repro-cli delta timeline ROOT RUN_A RUN_B RANK [--json]\n"
      "            [--eps 1e-6]\n"
      "  repro-cli delta reconstruct ROOT RUN RANK ITER OUT.bin ...\n"
      "  repro-cli delta stats ROOT RUN RANK ...\n"
      "      delta-compacted checkpoint history store\n"
      "\n"
      "  repro-cli serve (--socket PATH | --port N) [--cache-bytes 256M]\n"
      "            [--cache-shards 8] [--workers 2] [--max-inflight 8]\n"
      "            [--request-timeout-ms 30000] [--eps 1e-6]\n"
      "            [--backend uring|mmap|pread|threads]\n"
      "            [--alert-out FILE] [--max-watch-sessions 64]\n"
      "            [--metrics-port N] [--metrics-flush-ms 10000]\n"
      "            [--access-log FILE] [--slow-request-ms 1000]\n"
      "      run the reprod compare daemon: answers COMPARE/TIMELINE\n"
      "      queries from a sharded LRU metadata cache and hosts live\n"
      "      WATCH divergence sessions; drains cleanly on SIGTERM or a\n"
      "      SHUTDOWN frame (see docs/SERVICE.md). --alert-out collects\n"
      "      first-divergence alerts (JSONL); --metrics-port exposes the\n"
      "      Prometheus text exposition on a loopback TCP port; with\n"
      "      --metrics-out a snapshot is also flushed every\n"
      "      --metrics-flush-ms while serving. --access-log appends one\n"
      "      repro.svc.access v1 JSON record per request with the\n"
      "      per-phase latency breakdown; requests at or beyond\n"
      "      --slow-request-ms wall time are flagged slow\n"
      "\n"
      "  repro-cli route (--socket PATH | --port N)\n"
      "            --workers EP[=W],EP[=W],... [--health-interval-ms 250]\n"
      "            [--upstream-timeout-ms 30000] [--pool-per-worker 4]\n"
      "            [--access-log FILE] [--max-frame-bytes N]\n"
      "      run the reprod-router front proxy: shards requests over a\n"
      "      worker pool by rendezvous-hashed run id, with PING health\n"
      "      checks, ejection + backoff re-admission, and streamed\n"
      "      TIMELINE_CHUNK passthrough (docs/SERVICE.md \"Scale-out\n"
      "      topology\"). Worker endpoints are unix socket paths or\n"
      "      host:port, with an optional =WEIGHT ring weight\n"
      "\n"
      "  repro-cli watch ROOT RUN --reference REF [--rank 0]\n"
      "            (--socket PATH | --port N) [--eps 1e-6] [--chunk 64K]\n"
      "      stream RUN's captured checkpoints to a reprod daemon as a\n"
      "      WATCH session: Merkle digests only (full nodes first, deltas\n"
      "      after), one live verdict per iteration, exit 1 on the first\n"
      "      divergence against REF\n"
      "\n"
      "  repro-cli client (--socket PATH | --port N) OP [...]\n"
      "      one request against a running daemon; OP is one of:\n"
      "        ping | stats | shutdown | metrics\n"
      "        compare A.ckpt B.ckpt [--eps E]\n"
      "        timeline ROOT RUN_A RUN_B [--eps E] | load-run ROOT RUN\n"
      "      compare/timeline verdicts map onto exit codes 0/1 as usual;\n"
      "      stats also prints the daemon's build/uptime summary\n"
      "\n"
      "  repro-cli trace-merge A.json B.json --out MERGED.json\n"
      "      join two --trace-out files (e.g. a client's and the daemon's)\n"
      "      into one causal timeline: spans are matched by the propagated\n"
      "      trace_id, the clock offset is estimated from matched\n"
      "      request-span midpoints (PING round trips preferred), and the\n"
      "      merged view shows each source file as its own process\n"
      "      (docs/OBSERVABILITY.md)\n"
      "\n"
      "exit codes: 0 = within the error bound, 1 = divergence found,\n"
      "            2 = usage or runtime error\n");
}

int fail(const repro::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 2;
}

repro::Result<merkle::TreeParams> tree_params_from(const Args& args) {
  merkle::TreeParams params;
  REPRO_ASSIGN_OR_RETURN(params.chunk_bytes,
                         args.get_size("chunk", 64 * repro::kKiB));
  REPRO_ASSIGN_OR_RETURN(params.hash.error_bound, args.get_f64("eps", 1e-6));
  REPRO_ASSIGN_OR_RETURN(const std::uint64_t block, args.get_u64("block", 4));
  params.hash.values_per_block = static_cast<std::uint32_t>(block);
  return params;
}

int cmd_simulate(const Args& args) {
  if (!args.has("out") || !args.has("run")) {
    std::fprintf(stderr, "simulate requires --out DIR and --run ID\n");
    return 2;
  }
  sim::SimConfig config;
  auto particles = args.get_u64("particles", 1ULL << 15);
  if (!particles.is_ok()) return fail(particles.status());
  config.num_particles = particles.value();
  auto steps = args.get_u64("steps", 50);
  if (!steps.is_ok()) return fail(steps.status());
  config.steps = static_cast<std::uint32_t>(steps.value());
  auto mesh = args.get_u64("mesh", 32);
  if (!mesh.is_ok()) return fail(mesh.status());
  config.mesh_dim = static_cast<std::uint32_t>(mesh.value());
  auto seed = args.get_u64("seed", 12345);
  if (!seed.is_ok()) return fail(seed.status());
  auto rank = args.get_u64("rank", 0);
  if (!rank.is_ok()) return fail(rank.status());
  // Each rank simulates a distinct particle population (seed offset), so a
  // multi-rank history has per-rank payloads that still align across runs.
  config.seed = seed.value() + rank.value();

  auto noise_seed = args.get_u64("noise-seed", 0);
  if (!noise_seed.is_ok()) return fail(noise_seed.status());
  auto jitter = args.get_f64("jitter", 0.0);
  if (!jitter.is_ok()) return fail(jitter.status());
  auto noise_start = args.get_u64("noise-start", 0);
  if (!noise_start.is_ok()) return fail(noise_start.status());
  if (noise_seed.value() != 0 || jitter.value() > 0) {
    config.noise.enabled = true;
    config.noise.run_seed = noise_seed.value() + rank.value();
    config.noise.jitter_magnitude = jitter.value();
    config.noise.start_iteration = noise_start.value();
  }

  auto capture_every = args.get_u64("capture-every", 10);
  if (!capture_every.is_ok()) return fail(capture_every.status());
  std::vector<std::uint64_t> capture_iterations;
  for (std::uint64_t it = capture_every.value(); it <= config.steps;
       it += capture_every.value()) {
    capture_iterations.push_back(it);
  }

  auto tree = tree_params_from(args);
  if (!tree.is_ok()) return fail(tree.status());

  const std::string run_id = args.get("run", "run");
  ckpt::HistoryCatalog catalog{args.get("out", ".")};
  ckpt::CaptureOptions capture_options;
  capture_options.tree = tree.value();
  repro::TempDir local{"repro-cli-local"};
  ckpt::CaptureEngine engine(local.path(), catalog, capture_options);

  sim::HaccLite app(config);
  repro::Status status = app.initialize();
  if (!status.is_ok()) return fail(status);

  status = app.run(capture_iterations, [&](std::uint64_t iteration) {
    ckpt::CheckpointWriter writer("haccette", run_id, iteration,
                                  static_cast<std::uint32_t>(rank.value()));
    REPRO_RETURN_IF_ERROR(app.add_checkpoint_fields(writer));
    return engine.capture(writer);
  });
  if (!status.is_ok()) return fail(status);
  status = engine.wait_all();
  if (!status.is_ok()) return fail(status);

  const auto& stats = engine.stats();
  std::printf("captured %llu checkpoints (%s data, %s metadata) to %s\n",
              static_cast<unsigned long long>(stats.checkpoints_captured),
              repro::format_size(stats.bytes_captured).c_str(),
              repro::format_size(stats.metadata_bytes).c_str(),
              catalog.root().c_str());
  return 0;
}

int cmd_tree(const Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "tree requires a checkpoint path\n");
    return 2;
  }
  const std::filesystem::path ckpt_path = args.positional()[1];
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());

  auto reader = ckpt::CheckpointReader::open(ckpt_path);
  if (!reader.is_ok()) return fail(reader.status());
  auto data = reader.value().read_data();
  if (!data.is_ok()) return fail(data.status());

  merkle::TreeBuilder builder(params.value(), par::Exec::parallel());
  auto tree = builder.build(data.value());
  if (!tree.is_ok()) return fail(tree.status());

  const std::string format = args.get("format", "v2");
  if (format != "v1" && format != "v2") {
    std::fprintf(stderr, "tree --format expects v1 or v2\n");
    return 2;
  }
  const std::filesystem::path out =
      args.get("out", ckpt_path.string() + ".rmrk");
  const repro::Status saved = merkle::save_sidecar(
      tree.value(), out,
      format == "v1" ? merkle::SidecarWriteFormat::kLegacyV1
                     : merkle::SidecarWriteFormat::kFlatV2);
  if (!saved.is_ok()) return fail(saved);

  std::printf("wrote %s: %llu chunks of %s, eps=%g, %s metadata (%.2f%% of "
              "checkpoint)\n",
              out.c_str(),
              static_cast<unsigned long long>(tree.value().num_chunks()),
              repro::format_size(params.value().chunk_bytes).c_str(),
              params.value().hash.error_bound,
              repro::format_size(tree.value().metadata_bytes()).c_str(),
              100.0 * static_cast<double>(tree.value().metadata_bytes()) /
                  static_cast<double>(data.value().size()));
  return 0;
}

int cmd_compare(const Args& args) {
  if (args.positional().size() < 3) {
    std::fprintf(stderr, "compare requires two checkpoint paths\n");
    return 2;
  }
  const std::filesystem::path path_a = args.positional()[1];
  const std::filesystem::path path_b = args.positional()[2];
  auto eps = args.get_f64("eps", 1e-6);
  if (!eps.is_ok()) return fail(eps.status());
  const std::string method = args.get("method", "ours");

  if (method == "allclose") {
    baseline::AllCloseOptions options;
    options.atol = eps.value();
    auto report = baseline::allclose_files(path_a, path_b, options);
    if (!report.is_ok()) return fail(report.status());
    std::printf("allclose: %s (%llu of %llu values exceed %g) in %.3fs "
                "(%s)\n",
                report.value().all_close ? "PASS" : "FAIL",
                static_cast<unsigned long long>(
                    report.value().values_exceeding),
                static_cast<unsigned long long>(
                    report.value().values_compared),
                options.atol, report.value().total_seconds,
                repro::format_throughput(
                    report.value().throughput_bytes_per_second())
                    .c_str());
    return report.value().all_close ? 0 : 1;
  }

  auto backend = io::parse_backend(args.get("backend", "uring"));
  if (!backend.is_ok()) return fail(backend.status());
  auto diffs = args.get_u64("diffs", 10);
  if (!diffs.is_ok()) return fail(diffs.status());
  const std::string ledger_out = args.get("ledger-out", "");

  cmp::CompareReport report;
  if (method == "direct") {
    baseline::DirectOptions options;
    options.error_bound = eps.value();
    options.backend = backend.value();
    options.collect_diffs = diffs.value() > 0;
    options.max_diffs = diffs.value();
    auto result = baseline::direct_compare(path_a, path_b, options);
    if (!result.is_ok()) return fail(result.status());
    report = std::move(result).value();
  } else if (method == "ours") {
    cmp::CompareOptions options;
    options.error_bound = eps.value();
    options.backend = backend.value();
    options.collect_diffs = diffs.value() > 0;
    options.max_diffs = diffs.value();
    options.collect_field_stats = !ledger_out.empty();
    auto params = tree_params_from(args);
    if (!params.is_ok()) return fail(params.status());
    options.tree = params.value();
    auto result = cmp::compare_files(path_a, path_b, options);
    if (!result.is_ok()) return fail(result.status());
    report = std::move(result).value();
  } else {
    std::fprintf(stderr, "unknown --method '%s'\n", method.c_str());
    return 2;
  }

  std::printf("%s: %llu values exceed eps=%g", method.c_str(),
              static_cast<unsigned long long>(report.values_exceeding),
              eps.value());
  if (report.chunks_total > 0) {
    std::printf(" (%llu/%llu chunks flagged, %.2f%% of data re-read)",
                static_cast<unsigned long long>(report.chunks_flagged),
                static_cast<unsigned long long>(report.chunks_total),
                100.0 * report.fraction_data_flagged());
  }
  std::printf("\nruntime %.3fs, throughput %s\n", report.total_seconds,
              repro::format_throughput(report.throughput_bytes_per_second())
                  .c_str());
  for (const auto& name : report.timers.names()) {
    std::printf("  %-16s %.4fs\n", name.c_str(),
                report.timers.seconds(name));
  }
  if (report.io_recovery_active()) {
    std::printf("io recovery: %llu retries, %llu short reads, "
                "%llu interrupts, %llu backend fallbacks\n",
                static_cast<unsigned long long>(report.io_retries),
                static_cast<unsigned long long>(report.io_short_reads),
                static_cast<unsigned long long>(report.io_interrupts),
                static_cast<unsigned long long>(report.io_fallbacks));
  } else {
    std::printf("io clean; full counters via --metrics-out=PATH\n");
  }

  if (g_run_report != nullptr) {
    g_run_report->set_verdict(report.values_exceeding == 0 ? "within-bound"
                                                           : "diverged");
    g_run_report->add_info("method", method);
    g_run_report->add_info("file_a", path_a.string());
    g_run_report->add_info("file_b", path_b.string());
    g_run_report->add_value("error_bound", eps.value());
    g_run_report->add_value("data_bytes",
                            static_cast<double>(report.data_bytes));
    g_run_report->add_value("chunks_total",
                            static_cast<double>(report.chunks_total));
    g_run_report->add_value("chunks_flagged",
                            static_cast<double>(report.chunks_flagged));
    g_run_report->add_value("values_compared",
                            static_cast<double>(report.values_compared));
    g_run_report->add_value("values_exceeding",
                            static_cast<double>(report.values_exceeding));
    g_run_report->add_value("io_retries",
                            static_cast<double>(report.io_retries));
    g_run_report->add_value("io_fallbacks",
                            static_cast<double>(report.io_fallbacks));
    g_run_report->add_value("total_seconds", report.total_seconds);
    g_run_report->add_timers(report.timers);
  }
  if (!report.diffs.empty()) {
    std::printf("sample differences:\n");
    for (const auto& diff : report.diffs) {
      std::printf("  %s[%llu]: %.8g vs %.8g\n",
                  diff.field.empty() ? "?" : diff.field.c_str(),
                  static_cast<unsigned long long>(diff.element_index),
                  diff.value_a, diff.value_b);
    }
  }
  if (!ledger_out.empty()) {
    diverge::DivergenceLedger ledger(path_a.string(), path_b.string(),
                                     eps.value());
    ckpt::CheckpointPair pair;
    pair.run_a.run_id = path_a.string();
    pair.run_a.checkpoint_path = path_a;
    pair.run_b.run_id = path_b.string();
    pair.run_b.checkpoint_path = path_b;
    ledger.add_pair(pair, report);
    const repro::Status status = ledger.write_jsonl(ledger_out);
    if (!status.is_ok()) return fail(status);
    std::printf("ledger written to %s (%zu records)\n", ledger_out.c_str(),
                ledger.records().size());
  }
  return report.values_exceeding == 0 ? 0 : 1;
}

int cmd_history(const Args& args) {
  if (args.positional().size() < 4) {
    std::fprintf(stderr, "history requires ROOT RUN_A RUN_B\n");
    return 2;
  }
  ckpt::HistoryCatalog catalog{args.positional()[1]};
  auto eps = args.get_f64("eps", 1e-6);
  if (!eps.is_ok()) return fail(eps.status());

  cmp::HistoryOptions options;
  options.pair_options.error_bound = eps.value();
  options.stop_at_first_divergence = args.has("stop-early");
  options.allow_ragged = args.has("ragged");
  const std::string ledger_out = args.get("ledger-out", "");
  options.pair_options.collect_field_stats = !ledger_out.empty();
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());
  options.pair_options.tree = params.value();

  auto history = cmp::compare_histories(catalog, args.positional()[2],
                                        args.positional()[3], options);
  if (!history.is_ok()) return fail(history.status());

  for (const auto& ref : history.value().only_in_a) {
    std::fprintf(stderr, "warning: iter%llu/rank%u exists only in %s\n",
                 static_cast<unsigned long long>(ref.iteration), ref.rank,
                 args.positional()[2].c_str());
  }
  for (const auto& ref : history.value().only_in_b) {
    std::fprintf(stderr, "warning: iter%llu/rank%u exists only in %s\n",
                 static_cast<unsigned long long>(ref.iteration), ref.rank,
                 args.positional()[3].c_str());
  }

  repro::TextTable table({"iteration", "rank", "values>eps", "chunks flagged",
                          "data re-read"});
  for (const auto& [pair, report] : history.value().pairs) {
    table.add_row({std::to_string(pair.run_a.iteration),
                   std::to_string(pair.run_a.rank),
                   std::to_string(report.values_exceeding),
                   std::to_string(report.chunks_flagged) + "/" +
                       std::to_string(report.chunks_total),
                   repro::strprintf("%.2f%%",
                                    100.0 * report.fraction_data_flagged())});
  }
  table.print();
  const bool diverged =
      history.value().first_divergent_iteration.has_value();
  if (g_run_report != nullptr) {
    g_run_report->set_verdict(diverged ? "diverged" : "within-bound");
    g_run_report->add_info("run_a", args.positional()[2]);
    g_run_report->add_info("run_b", args.positional()[3]);
    g_run_report->add_value("error_bound", eps.value());
    g_run_report->add_value(
        "pairs_compared", static_cast<double>(history.value().pairs.size()));
    g_run_report->add_value("total_seconds", history.value().total_seconds);
    if (diverged) {
      g_run_report->add_value(
          "first_divergent_iteration",
          static_cast<double>(*history.value().first_divergent_iteration));
    }
    for (const auto& [pair, report] : history.value().pairs) {
      g_run_report->add_timers(report.timers);
    }
  }
  if (!ledger_out.empty()) {
    diverge::DivergenceLedger ledger(args.positional()[2],
                                     args.positional()[3], eps.value());
    ledger.add_history(history.value());
    const repro::Status status = ledger.write_jsonl(ledger_out);
    if (!status.is_ok()) return fail(status);
    std::printf("ledger written to %s (%zu records)\n", ledger_out.c_str(),
                ledger.records().size());
  }
  if (diverged) {
    std::printf("first divergence: iteration %llu (rank %u)\n",
                static_cast<unsigned long long>(
                    *history.value().first_divergent_iteration),
                *history.value().first_divergent_rank);
    return 1;
  }
  std::printf("histories agree within eps=%g\n", eps.value());
  return 0;
}

int cmd_timeline(const Args& args) {
  if (args.positional().size() < 4) {
    std::fprintf(stderr, "timeline requires ROOT RUN_A RUN_B\n");
    return 2;
  }
  ckpt::HistoryCatalog catalog{args.positional()[1]};
  const std::string& run_a = args.positional()[2];
  const std::string& run_b = args.positional()[3];
  auto eps = args.get_f64("eps", 1e-6);
  if (!eps.is_ok()) return fail(eps.status());
  auto heatmap_width = args.get_u64("heatmap-width", 64);
  if (!heatmap_width.is_ok()) return fail(heatmap_width.status());

  // Forensics wants the whole picture: per-field stats always on, compare
  // every surviving pair of a ragged history instead of refusing.
  cmp::HistoryOptions options;
  options.pair_options.error_bound = eps.value();
  options.pair_options.collect_field_stats = true;
  options.allow_ragged = true;
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());
  options.pair_options.tree = params.value();

  auto history = cmp::compare_histories(catalog, run_a, run_b, options);
  if (!history.is_ok()) return fail(history.status());

  diverge::DivergenceLedger ledger(run_a, run_b, eps.value());
  ledger.add_history(history.value());

  const std::string ledger_out = args.get("ledger-out", "");
  if (!ledger_out.empty()) {
    const repro::Status status = ledger.write_jsonl(ledger_out);
    if (!status.is_ok()) return fail(status);
  }

  for (const auto& ref : history.value().only_in_a) {
    std::fprintf(stderr, "warning: iter%llu/rank%u exists only in %s\n",
                 static_cast<unsigned long long>(ref.iteration), ref.rank,
                 run_a.c_str());
  }
  for (const auto& ref : history.value().only_in_b) {
    std::fprintf(stderr, "warning: iter%llu/rank%u exists only in %s\n",
                 static_cast<unsigned long long>(ref.iteration), ref.rank,
                 run_b.c_str());
  }

  diverge::TimelineOptions timeline_options;
  timeline_options.json = args.has("json");
  timeline_options.ansi = args.has("ansi");
  timeline_options.heatmap_width =
      static_cast<std::size_t>(heatmap_width.value());
  const std::string rendered =
      diverge::render_timeline(ledger, timeline_options);
  std::fputs(rendered.c_str(), stdout);

  const diverge::LedgerSummary summary = ledger.summarize();
  const bool diverged = summary.first_divergent_iteration.has_value();
  if (g_run_report != nullptr) {
    g_run_report->set_verdict(diverged ? "diverged" : "within-bound");
    g_run_report->add_info("run_a", run_a);
    g_run_report->add_info("run_b", run_b);
    g_run_report->add_value("error_bound", eps.value());
    g_run_report->add_value(
        "pairs_compared", static_cast<double>(history.value().pairs.size()));
    g_run_report->add_value("ledger_records",
                            static_cast<double>(ledger.records().size()));
    if (diverged) {
      g_run_report->add_value(
          "first_divergent_iteration",
          static_cast<double>(*summary.first_divergent_iteration));
    }
    for (const auto& [pair, report] : history.value().pairs) {
      g_run_report->add_timers(report.timers);
    }
  }
  if (!ledger_out.empty() && !timeline_options.json) {
    // stdout stays pure JSON under --json; the ledger note would corrupt it.
    std::printf("ledger written to %s (%zu records)\n", ledger_out.c_str(),
                ledger.records().size());
  }
  return diverged ? 1 : 0;
}

int cmd_inspect(const Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "inspect requires a file path\n");
    return 2;
  }
  const std::filesystem::path path = args.positional()[1];
  if (path.extension() == ".rmrk") {
    auto tree = merkle::MerkleTree::load(path);
    if (!tree.is_ok()) return fail(tree.status());
    const auto& t = tree.value();
    std::printf("merkle metadata %s\n", path.c_str());
    {
      auto raw = repro::read_file(path);
      if (raw.is_ok()) {
        const auto name = merkle::sidecar_format_name(
            merkle::detect_sidecar_format(raw.value()));
        std::printf("  format        %.*s\n", static_cast<int>(name.size()),
                    name.data());
      }
    }
    std::printf("  data size     %s\n",
                repro::format_size(t.data_bytes()).c_str());
    std::printf("  chunk size    %s\n",
                repro::format_size(t.params().chunk_bytes).c_str());
    std::printf("  value kind    %.*s\n",
                static_cast<int>(
                    merkle::value_kind_name(t.params().value_kind).size()),
                merkle::value_kind_name(t.params().value_kind).data());
    std::printf("  error bound   %g\n", t.params().hash.error_bound);
    std::printf("  chunks        %llu (depth %u)\n",
                static_cast<unsigned long long>(t.num_chunks()),
                t.layout().depth);
    std::printf("  root digest   %s\n", t.root().hex().c_str());
    return 0;
  }

  auto reader = ckpt::CheckpointReader::open(path);
  if (!reader.is_ok()) return fail(reader.status());
  const auto& info = reader.value().info();
  std::printf("checkpoint %s\n", path.c_str());
  std::printf("  application   %s\n  run           %s\n",
              info.application.c_str(), info.run_id.c_str());
  std::printf("  iteration     %llu\n  rank          %u\n",
              static_cast<unsigned long long>(info.iteration), info.rank);
  repro::TextTable table({"field", "type", "elements", "bytes"});
  for (const auto& field : info.fields) {
    table.add_row({field.name, std::string{merkle::value_kind_name(field.kind)},
                   std::to_string(field.element_count),
                   repro::format_size(field.byte_size())});
  }
  table.print();
  return 0;
}

const char* section_name(std::uint32_t id) {
  switch (static_cast<merkle::SectionId>(id)) {
    case merkle::SectionId::kTreeTable: return "tree-table";
    case merkle::SectionId::kNames: return "names";
    case merkle::SectionId::kNodes: return "nodes";
    case merkle::SectionId::kDelta: return "delta";
  }
  return "unknown";
}

/// `repro-cli info SIDECAR`: detected format, header/section structure, and
/// a per-tree summary. Unlike inspect (which decodes), info reports what is
/// physically on disk — the debugging entry point for format questions.
int cmd_info(const Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "info requires a sidecar path\n");
    return 2;
  }
  const std::filesystem::path path = args.positional()[1];
  auto bytes = repro::read_file(path);
  if (!bytes.is_ok()) return fail(bytes.status());
  const merkle::SidecarFormat format =
      merkle::detect_sidecar_format(bytes.value());
  const auto format_name = merkle::sidecar_format_name(format);
  std::printf("sidecar %s\n", path.c_str());
  std::printf("  format        %.*s\n", static_cast<int>(format_name.size()),
              format_name.data());
  std::printf("  file size     %s\n",
              repro::format_size(bytes.value().size()).c_str());

  switch (format) {
    case merkle::SidecarFormat::kV2Flat: {
      // A v2-magic file with an unknown version fails here with the
      // parse-layer error that names `migrate` — not a generic failure.
      auto view = merkle::BundleView::parse(bytes.value());
      if (!view.is_ok()) return fail(view.status());
      std::printf("  version       %u\n", merkle::kFlatVersion);
      std::printf("  sections      %zu\n", view.value().sections().size());
      for (const auto& section : view.value().sections()) {
        std::printf("    %-11s offset=%-8llu length=%-10llu "
                    "checksum=%016llx\n",
                    section_name(section.id),
                    static_cast<unsigned long long>(section.offset),
                    static_cast<unsigned long long>(section.length),
                    static_cast<unsigned long long>(section.checksum));
      }
      std::printf("  trees         %zu\n", view.value().size());
      for (std::size_t i = 0; i < view.value().size(); ++i) {
        const merkle::TreeView& tree = view.value().tree(i);
        const std::string_view name = view.value().name(i);
        std::printf("    %s: %llu chunks of %s, eps=%g, root %s\n",
                    name.empty() ? "(unnamed)" : std::string(name).c_str(),
                    static_cast<unsigned long long>(tree.num_chunks()),
                    repro::format_size(tree.params().chunk_bytes).c_str(),
                    tree.params().hash.error_bound,
                    tree.root().hex().c_str());
      }
      if (view.value().has_delta()) {
        auto delta = view.value().delta();
        if (!delta.is_ok()) return fail(delta.status());
        std::printf("  differential  iteration %llu vs %llu: %zu changed "
                    "nodes (%zu chunks) of %llu leaves\n",
                    static_cast<unsigned long long>(delta.value().iteration),
                    static_cast<unsigned long long>(
                        delta.value().base_iteration),
                    delta.value().nodes.size(),
                    delta.value().changed_chunks().size(),
                    static_cast<unsigned long long>(
                        delta.value().num_leaves));
        if (view.value().size() == 0) {
          std::printf("  note: delta-only sidecar — trees resolve against "
                      "iter%llu.rmrk in the same directory\n",
                      static_cast<unsigned long long>(
                          delta.value().base_iteration));
        }
      }
      return 0;
    }
    case merkle::SidecarFormat::kV1Tree: {
      auto tree = merkle::MerkleTree::deserialize(bytes.value());
      if (!tree.is_ok()) return fail(tree.status());
      std::printf("  version       1\n");
      std::printf("  trees         1\n");
      std::printf("    (unnamed): %llu chunks of %s, eps=%g, root %s\n",
                  static_cast<unsigned long long>(tree.value().num_chunks()),
                  repro::format_size(
                      tree.value().params().chunk_bytes).c_str(),
                  tree.value().params().hash.error_bound,
                  tree.value().root().hex().c_str());
      std::printf("  note: legacy v1 — `repro-cli migrate %s` rewrites it "
                  "as flat v2 (mmap-able, zero-copy reads)\n",
                  path.c_str());
      return 0;
    }
    case merkle::SidecarFormat::kV1Bundle: {
      auto bundle = merkle::TreeBundle::deserialize(bytes.value());
      if (!bundle.is_ok()) return fail(bundle.status());
      std::printf("  version       1\n");
      std::printf("  trees         %zu\n", bundle.value().size());
      for (const auto& [name, tree] : bundle.value().entries()) {
        std::printf("    %s: %llu chunks of %s, eps=%g\n", name.c_str(),
                    static_cast<unsigned long long>(tree.num_chunks()),
                    repro::format_size(tree.params().chunk_bytes).c_str(),
                    tree.params().hash.error_bound);
      }
      std::printf("  note: legacy v1 — `repro-cli migrate %s` rewrites it "
                  "as flat v2 (mmap-able, zero-copy reads)\n",
                  path.c_str());
      return 0;
    }
    case merkle::SidecarFormat::kUnknown:
      break;
  }
  return fail(repro::corrupt_data(
      "unrecognized sidecar magic (expected RMRK, RMRB, or RMF2)"));
}

/// `repro-cli migrate SIDECAR [--to v2|v1] [--out FILE]`: rewrite a sidecar
/// between the legacy and flat encodings. In-place rewrites go through the
/// same atomic temp+rename publish as every other sidecar write.
int cmd_migrate(const Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "migrate requires a sidecar path\n");
    return 2;
  }
  const std::filesystem::path path = args.positional()[1];
  const std::string target = args.get("to", "v2");
  if (target != "v1" && target != "v2") {
    std::fprintf(stderr, "migrate --to expects v1 or v2\n");
    return 2;
  }
  const std::filesystem::path out = args.get("out", path.string());

  auto bytes = repro::read_file(path);
  if (!bytes.is_ok()) return fail(bytes.status());
  const merkle::SidecarFormat format =
      merkle::detect_sidecar_format(bytes.value());
  if (format == merkle::SidecarFormat::kUnknown) {
    return fail(repro::corrupt_data(
        "unrecognized sidecar magic (expected RMRK, RMRB, or RMF2)"));
  }

  const bool already =
      (target == "v2") == (format == merkle::SidecarFormat::kV2Flat);
  if (already && out == path) {
    std::printf("%s is already %s; nothing to do\n", path.c_str(),
                target.c_str());
    return 0;
  }

  repro::Status saved;
  if (target == "v2") {
    // Either legacy decoder -> one flat blob. MappedBundle's conversion
    // path does exactly this; reuse it so migrate and the read shim agree.
    // (A v2 input passes through byte-identical.)
    auto bundle = merkle::MappedBundle::from_bytes(std::move(bytes).value());
    if (!bundle.is_ok()) return fail(bundle.status());
    saved = repro::write_file(out, bundle.value().bytes())
                .with_context("writing migrated sidecar");
  } else {
    // Downgrade: materialize every tree and emit the matching legacy
    // format (single unnamed tree -> RMRK, anything else -> RMRB).
    auto bundle = merkle::MappedBundle::from_bytes(std::move(bytes).value());
    if (!bundle.is_ok()) return fail(bundle.status());
    const merkle::BundleView& view = bundle.value().view();
    if (view.size() == 0 && view.has_delta()) {
      // A delta-only sidecar has no trees to downgrade; resolving the chain
      // would silently bake a different file's content into the output.
      return fail(repro::failed_precondition(
          "differential (RMFD-only) sidecar cannot be migrated to v1; "
          "resolve it against its anchor chain first"));
    }
    if (view.size() == 1 && view.name(0).empty()) {
      auto tree = view.tree(0).materialize();
      if (!tree.is_ok()) return fail(tree.status());
      saved = tree.value().save(out);
    } else {
      merkle::TreeBundle legacy;
      for (std::size_t i = 0; i < view.size(); ++i) {
        auto tree = view.tree(i).materialize();
        if (!tree.is_ok()) return fail(tree.status());
        const repro::Status added = legacy.add(std::string(view.name(i)),
                                               std::move(tree).value());
        if (!added.is_ok()) return fail(added);
      }
      saved = legacy.save(out);
    }
  }
  if (!saved.is_ok()) return fail(saved);
  std::printf("migrated %s -> %s (%s)\n", path.c_str(), out.c_str(),
              target.c_str());
  return 0;
}

/// Parse "X=1e-6,PHI=1e-2" into a field->bound map.
repro::Result<std::map<std::string, double, std::less<>>> parse_bounds(
    const std::string& text) {
  std::map<std::string, double, std::less<>> bounds;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::size_t equals = text.find('=', pos);
    if (equals == std::string::npos || equals >= comma) {
      return repro::invalid_argument(
          "--bounds expects FIELD=EPS[,FIELD=EPS...]");
    }
    const std::string name = text.substr(pos, equals - pos);
    try {
      bounds[name] = std::stod(text.substr(equals + 1, comma - equals - 1));
    } catch (const std::exception&) {
      return repro::invalid_argument("bad bound for field " + name);
    }
    pos = comma + 1;
  }
  return bounds;
}

int cmd_fields(const Args& args) {
  if (args.positional().size() < 3) {
    std::fprintf(stderr, "fields requires two checkpoint paths\n");
    return 2;
  }
  cmp::FieldCompareOptions options;
  auto default_eps = args.get_f64("default-eps", 1e-6);
  if (!default_eps.is_ok()) return fail(default_eps.status());
  options.default_bound = default_eps.value();
  auto chunk = args.get_size("chunk", 16 * repro::kKiB);
  if (!chunk.is_ok()) return fail(chunk.status());
  options.chunk_bytes = chunk.value();
  if (args.has("bounds")) {
    auto bounds = parse_bounds(args.get("bounds", ""));
    if (!bounds.is_ok()) return fail(bounds.status());
    options.field_bounds = std::move(bounds).value();
  }
  auto backend = io::parse_backend(args.get("backend", "uring"));
  if (!backend.is_ok()) return fail(backend.status());
  options.backend = backend.value();

  const auto report = cmp::compare_fields(args.positional()[1],
                                          args.positional()[2], options);
  if (!report.is_ok()) return fail(report.status());

  repro::TextTable table({"field", "eps", "values>eps", "chunks flagged",
                          "data re-read"});
  for (const auto& field : report.value().fields) {
    table.add_row({field.field, repro::strprintf("%g", field.error_bound),
                   std::to_string(field.values_exceeding),
                   std::to_string(field.chunks_flagged) + "/" +
                       std::to_string(field.chunks_total),
                   repro::format_size(field.bytes_read_per_file)});
  }
  table.print();
  std::printf("verdict: %s (%.3fs)\n",
              report.value().identical_within_bounds()
                  ? "all fields within their bounds"
                  : "DIVERGED",
              report.value().total_seconds);
  return report.value().identical_within_bounds() ? 0 : 1;
}

int cmd_prove(const Args& args) {
  if (args.positional().size() < 2 || !args.has("index")) {
    std::fprintf(stderr, "prove requires a checkpoint path and --index\n");
    return 2;
  }
  auto index = args.get_u64("index", 0);
  if (!index.is_ok()) return fail(index.status());
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());

  auto reader = ckpt::CheckpointReader::open(args.positional()[1]);
  if (!reader.is_ok()) return fail(reader.status());
  auto data = reader.value().read_data();
  if (!data.is_ok()) return fail(data.status());
  auto tree = merkle::TreeBuilder(params.value(), par::Exec::parallel())
                  .build(data.value());
  if (!tree.is_ok()) return fail(tree.status());

  auto proof = merkle::prove_inclusion(tree.value(), index.value());
  if (!proof.is_ok()) return fail(proof.status());
  const std::filesystem::path out = args.get(
      "out", args.positional()[1] + ".chunk" +
                 std::to_string(index.value()) + ".rprf");
  const repro::Status saved =
      repro::write_file(out, proof.value().serialize());
  if (!saved.is_ok()) return fail(saved);
  std::printf("proof for chunk %llu written to %s (%zu bytes)\n"
              "pin this root: %s\n",
              static_cast<unsigned long long>(index.value()), out.c_str(),
              proof.value().serialize().size(),
              tree.value().root().hex().c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  if (args.positional().size() < 3 || !args.has("root")) {
    std::fprintf(stderr,
                 "verify requires PROOF CKPT and --root HEX\n");
    return 2;
  }
  const std::string root_hex = args.get("root", "");
  if (root_hex.size() != 32) {
    std::fprintf(stderr, "--root must be 32 hex chars\n");
    return 2;
  }
  hash::Digest128 root;
  try {
    root.lo = std::stoull(root_hex.substr(0, 16), nullptr, 16);
    root.hi = std::stoull(root_hex.substr(16, 16), nullptr, 16);
  } catch (const std::exception&) {
    std::fprintf(stderr, "--root is not valid hex\n");
    return 2;
  }
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());

  auto proof_bytes = repro::read_file(args.positional()[1]);
  if (!proof_bytes.is_ok()) return fail(proof_bytes.status());
  auto proof = merkle::InclusionProof::deserialize(proof_bytes.value());
  if (!proof.is_ok()) return fail(proof.status());

  auto reader = ckpt::CheckpointReader::open(args.positional()[2]);
  if (!reader.is_ok()) return fail(reader.status());
  auto data = reader.value().read_data();
  if (!data.is_ok()) return fail(data.status());
  const std::uint64_t begin =
      proof.value().chunk * params.value().chunk_bytes;
  if (begin >= data.value().size()) {
    std::fprintf(stderr, "proof's chunk lies outside this checkpoint\n");
    return 2;
  }
  const std::uint64_t length = std::min<std::uint64_t>(
      params.value().chunk_bytes, data.value().size() - begin);
  const repro::Status status = merkle::verify_chunk_data(
      proof.value(),
      std::span<const std::uint8_t>(data.value().data() + begin, length),
      params.value(), root);
  if (status.is_ok()) {
    std::printf("OK: chunk %llu of %s belongs to root %s (within eps)\n",
                static_cast<unsigned long long>(proof.value().chunk),
                args.positional()[2].c_str(), root_hex.c_str());
    return 0;
  }
  std::printf("REJECTED: %s\n", status.to_string().c_str());
  return 1;
}

int cmd_delta(const Args& args) {
  if (args.positional().size() < 5) {
    std::fprintf(stderr,
                 "delta requires a subcommand, store root, run and rank\n");
    return 2;
  }
  const std::string& action = args.positional()[1];
  const std::filesystem::path root = args.positional()[2];
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());
  ckpt::DeltaStoreOptions options;
  options.tree = params.value();

  if (action == "timeline") {
    // delta timeline ROOT RUN_A RUN_B RANK: incremental divergence walk —
    // one full compare at the first common iteration, then only the chunks
    // the RMFD sidecars say moved (O(divergence), not O(iterations*tree)).
    if (args.positional().size() < 6) {
      std::fprintf(stderr, "delta timeline requires ROOT RUN_A RUN_B RANK\n");
      return 2;
    }
    std::uint64_t timeline_rank = 0;
    try {
      timeline_rank = std::stoull(args.positional()[5]);
    } catch (const std::exception&) {
      std::fprintf(stderr, "RANK must be an integer\n");
      return 2;
    }
    auto store_a = ckpt::DeltaStore::load(
        root, args.positional()[3],
        static_cast<std::uint32_t>(timeline_rank), options);
    if (!store_a.is_ok()) return fail(store_a.status());
    auto store_b = ckpt::DeltaStore::load(
        root, args.positional()[4],
        static_cast<std::uint32_t>(timeline_rank), options);
    if (!store_b.is_ok()) return fail(store_b.status());
    ckpt::TimelineStats timeline_stats;
    auto timeline = ckpt::incremental_timeline(store_a.value(),
                                               store_b.value(),
                                               &timeline_stats);
    if (!timeline.is_ok()) return fail(timeline.status());
    if (args.has("json")) {
      std::printf("{\"iterations\":%llu,\"node_visits\":%llu,"
                  "\"full_visit_equiv\":%llu,\"timeline\":[",
                  static_cast<unsigned long long>(timeline_stats.iterations),
                  static_cast<unsigned long long>(timeline_stats.node_visits),
                  static_cast<unsigned long long>(
                      timeline_stats.full_visit_equiv));
      for (std::size_t i = 0; i < timeline.value().size(); ++i) {
        std::printf("%s{\"iteration\":%llu,\"diverged_chunks\":%llu}",
                    i == 0 ? "" : ",",
                    static_cast<unsigned long long>(
                        timeline.value()[i].iteration),
                    static_cast<unsigned long long>(
                        timeline.value()[i].diverged_chunks));
      }
      std::printf("]}\n");
      return 0;
    }
    repro::TextTable table({"iteration", "diverged chunks"});
    for (const auto& entry : timeline.value()) {
      table.add_row({std::to_string(entry.iteration),
                     std::to_string(entry.diverged_chunks)});
    }
    table.print();
    std::printf("%llu node visits over %llu iterations (full re-compare "
                "would have visited %llu)\n",
                static_cast<unsigned long long>(timeline_stats.node_visits),
                static_cast<unsigned long long>(timeline_stats.iterations),
                static_cast<unsigned long long>(
                    timeline_stats.full_visit_equiv));
    return 0;
  }

  const std::string run = args.positional()[3];
  std::uint64_t rank = 0;
  try {
    rank = std::stoull(args.positional()[4]);
  } catch (const std::exception&) {
    std::fprintf(stderr, "RANK must be an integer\n");
    return 2;
  }

  auto store = ckpt::DeltaStore::load(root, run,
                                      static_cast<std::uint32_t>(rank),
                                      options);
  if (!store.is_ok()) return fail(store.status());

  if (action == "stats") {
    const ckpt::DeltaStoreStats& stats = store.value().stats();
    // load() only recovers iteration numbers, not historical stats; report
    // what is recoverable: the iteration list and on-disk footprint.
    std::uint64_t on_disk = 0;
    for (const auto& entry : std::filesystem::recursive_directory_iterator(
             root / run / ("rank" + std::to_string(rank)))) {
      if (entry.is_regular_file()) on_disk += entry.file_size();
    }
    std::printf("delta store %s/%s/rank%llu: %zu iterations (%zu anchors), "
                "%s on disk\n",
                root.c_str(), run.c_str(),
                static_cast<unsigned long long>(rank),
                store.value().iterations().size(),
                store.value().anchors().size(),
                repro::format_size(on_disk).c_str());
    if (stats.captures > 0) {
      std::printf("session stats: %.2fx compaction, %.2fx metadata dedup "
                  "(%s vs %s full-per-iteration)\n",
                  stats.compaction_ratio(), stats.metadata_savings(),
                  repro::format_size(stats.metadata_bytes).c_str(),
                  repro::format_size(stats.metadata_full_bytes).c_str());
    }
    return 0;
  }

  if (args.positional().size() < 7) {
    std::fprintf(stderr, "delta %s requires ITER and a file path\n",
                 action.c_str());
    return 2;
  }
  std::uint64_t iteration = 0;
  try {
    iteration = std::stoull(args.positional()[5]);
  } catch (const std::exception&) {
    std::fprintf(stderr, "ITER must be an integer\n");
    return 2;
  }
  const std::filesystem::path file = args.positional()[6];

  if (action == "append") {
    auto reader = ckpt::CheckpointReader::open(file);
    if (!reader.is_ok()) return fail(reader.status());
    auto data = reader.value().read_data();
    if (!data.is_ok()) return fail(data.status());
    const repro::Status status =
        store.value().append(iteration, data.value());
    if (!status.is_ok()) return fail(status);
    const auto& stats = store.value().stats();
    std::printf("appended iteration %llu: %s raw -> %s stored this "
                "session\n",
                static_cast<unsigned long long>(iteration),
                repro::format_size(stats.raw_bytes).c_str(),
                repro::format_size(stats.stored_bytes).c_str());
    return 0;
  }
  if (action == "reconstruct") {
    auto data = store.value().reconstruct(iteration);
    if (!data.is_ok()) return fail(data.status());
    const repro::Status status = repro::write_file(file, data.value());
    if (!status.is_ok()) return fail(status);
    std::printf("reconstructed iteration %llu -> %s (%s)\n",
                static_cast<unsigned long long>(iteration), file.c_str(),
                repro::format_size(data.value().size()).c_str());
    return 0;
  }
  std::fprintf(stderr, "unknown delta subcommand '%s'\n", action.c_str());
  return 2;
}

/// `repro-cli serve`: run the reprod compare daemon until SIGTERM/SIGINT
/// or a SHUTDOWN frame drains it.
int cmd_serve(const Args& args) {
  if (!args.has("socket") && !args.has("port")) {
    std::fprintf(stderr,
                 "serve requires --socket PATH or --port N (0 = ephemeral)\n");
    return 2;
  }
  svc::ServerOptions options;
  options.socket_path = args.get("socket", "");
  auto port = args.get_u64("port", 0);
  if (!port.is_ok()) return fail(port.status());
  options.port = static_cast<std::uint16_t>(port.value());
  auto cache_bytes = args.get_size("cache-bytes", 256 * repro::kMiB);
  if (!cache_bytes.is_ok()) return fail(cache_bytes.status());
  options.cache_bytes = cache_bytes.value();
  auto cache_shards = args.get_u64("cache-shards", 8);
  if (!cache_shards.is_ok()) return fail(cache_shards.status());
  options.cache_shards = cache_shards.value();
  auto workers = args.get_u64("workers", 2);
  if (!workers.is_ok()) return fail(workers.status());
  options.workers = workers.value();
  auto inflight = args.get_u64("max-inflight", 8);
  if (!inflight.is_ok()) return fail(inflight.status());
  options.max_inflight_per_client =
      static_cast<std::uint32_t>(inflight.value());
  auto timeout_ms = args.get_u64("request-timeout-ms", 30000);
  if (!timeout_ms.is_ok()) return fail(timeout_ms.status());
  options.request_timeout = std::chrono::milliseconds(timeout_ms.value());
  auto max_frame = args.get_size("max-frame-bytes", svc::kDefaultMaxFrameBytes);
  if (!max_frame.is_ok()) return fail(max_frame.status());
  options.max_frame_bytes = static_cast<std::uint32_t>(max_frame.value());

  auto eps = args.get_f64("eps", 1e-6);
  if (!eps.is_ok()) return fail(eps.status());
  auto backend = io::parse_backend(args.get("backend", "uring"));
  if (!backend.is_ok()) return fail(backend.status());
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());
  options.compare.error_bound = eps.value();
  options.compare.backend = backend.value();
  options.compare.tree = params.value();
  options.alert_path = args.get("alert-out", "");
  auto watch_sessions = args.get_u64("max-watch-sessions", 64);
  if (!watch_sessions.is_ok()) return fail(watch_sessions.status());
  options.max_watch_sessions = watch_sessions.value();
  options.access_log_path = args.get("access-log", "");
  auto slow_ms = args.get_u64("slow-request-ms", 1000);
  if (!slow_ms.is_ok()) return fail(slow_ms.status());
  options.slow_request_ms = slow_ms.value();

  svc::Server server(std::move(options));
  repro::Status status = svc::install_signal_handlers(server);
  if (!status.is_ok()) return fail(status);
  status = server.start();
  if (!status.is_ok()) return fail(status);

  // Scrape endpoint: a loopback TCP listener that writes the Prometheus
  // text exposition and closes — no HTTP layer, so `nc 127.0.0.1 PORT`
  // (or any raw-TCP scraper) gets the page. Runs on its own thread; the
  // daemon's event loop never blocks on a slow scraper.
  std::atomic<bool> sidecars_stop{false};
  int metrics_fd = -1;
  std::thread metrics_thread;
  if (args.has("metrics-port")) {
    auto metrics_port = args.get_u64("metrics-port", 0);
    if (!metrics_port.is_ok()) return fail(metrics_port.status());
    metrics_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (metrics_fd < 0) {
      return fail(repro::internal_error("metrics socket failed"));
    }
    const int one = 1;
    ::setsockopt(metrics_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(metrics_port.value()));
    if (::bind(metrics_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(metrics_fd, 16) != 0) {
      ::close(metrics_fd);
      return fail(repro::internal_error("metrics bind/listen failed on port " +
                                        std::to_string(metrics_port.value())));
    }
    socklen_t addr_len = sizeof(addr);
    ::getsockname(metrics_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
    std::printf("metrics exposition on tcp:127.0.0.1:%u\n",
                ntohs(addr.sin_port));
    metrics_thread = std::thread([fd = metrics_fd, &sidecars_stop] {
      while (!sidecars_stop.load(std::memory_order_relaxed)) {
        pollfd pfd{fd, POLLIN, 0};
        if (::poll(&pfd, 1, 200) <= 0) continue;
        const int peer = ::accept(fd, nullptr, nullptr);
        if (peer < 0) continue;
        const std::string page = telemetry::render_prometheus(
            telemetry::MetricsRegistry::global().snapshot());
        std::size_t sent = 0;
        while (sent < page.size()) {
          const ssize_t n = ::send(peer, page.data() + sent,
                                   page.size() - sent, MSG_NOSIGNAL);
          if (n <= 0) break;
          sent += static_cast<std::size_t>(n);
        }
        ::shutdown(peer, SHUT_WR);
        ::close(peer);
      }
    });
  }

  // Periodic --metrics-out flush: the standard run() publish only fires
  // after serve() returns, which for a daemon is "never, until shutdown" —
  // a monitoring agent tailing the file would see nothing. Re-publish the
  // snapshot on a timer so the file tracks the live registry.
  const std::string metrics_out = args.get("metrics-out", "");
  auto flush_ms = args.get_u64("metrics-flush-ms", 10000);
  if (!flush_ms.is_ok()) return fail(flush_ms.status());
  std::thread flush_thread;
  if (!metrics_out.empty() && flush_ms.value() > 0) {
    flush_thread = std::thread([&sidecars_stop, &server, metrics_out,
                                period_ms = flush_ms.value()] {
      std::uint64_t slept = 0;
      while (!sidecars_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        slept += 50;
        if (slept < period_ms) continue;
        slept = 0;
        telemetry::RunReport snapshot("serve");
        snapshot.set_verdict("serving");
        snapshot.add_info("endpoint", server.endpoint());
        snapshot.set_metrics(telemetry::MetricsRegistry::global().snapshot());
        (void)snapshot.write_json(metrics_out);
      }
    });
  }

  std::printf("reprod listening on %s\n", server.endpoint().c_str());
  std::fflush(stdout);  // tests poll for this line before connecting
  status = server.serve();
  sidecars_stop.store(true, std::memory_order_relaxed);
  if (metrics_thread.joinable()) metrics_thread.join();
  if (flush_thread.joinable()) flush_thread.join();
  if (metrics_fd >= 0) ::close(metrics_fd);
  if (!status.is_ok()) return fail(status);

  const svc::CacheStats stats = server.cache().stats();
  std::printf("drained; cache: %llu hits, %llu misses, %llu evictions, "
              "%llu bytes resident\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.evictions),
              static_cast<unsigned long long>(stats.bytes));
  if (g_run_report != nullptr) {
    g_run_report->set_verdict("drained");
    g_run_report->add_info("endpoint", server.endpoint());
    g_run_report->add_value("cache_hits", static_cast<double>(stats.hits));
    g_run_report->add_value("cache_misses",
                            static_cast<double>(stats.misses));
    g_run_report->add_value("cache_evictions",
                            static_cast<double>(stats.evictions));
    g_run_report->add_value("cache_bytes", static_cast<double>(stats.bytes));
  }
  return 0;
}

namespace {
svc::Router* g_router = nullptr;

void router_signal_handler(int) {
  if (g_router != nullptr) g_router->request_stop();
}

/// Parses a --workers value: comma-separated endpoints, each optionally
/// suffixed "=WEIGHT" (ring weight, default 1.0).
repro::Result<std::vector<svc::RingWorker>> parse_worker_list(
    std::string_view spec) {
  std::vector<svc::RingWorker> workers;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    std::string_view item = spec.substr(
        start, comma == std::string_view::npos ? spec.size() - start
                                               : comma - start);
    if (!item.empty()) {
      svc::RingWorker worker;
      const std::size_t eq = item.rfind('=');
      if (eq != std::string_view::npos) {
        const std::string weight_text(item.substr(eq + 1));
        char* end = nullptr;
        const double weight = std::strtod(weight_text.c_str(), &end);
        if (end == weight_text.c_str() || *end != '\0' || weight <= 0) {
          return repro::invalid_argument("bad worker weight: " +
                                         std::string(item));
        }
        worker.weight = weight;
        item = item.substr(0, eq);
      }
      worker.endpoint = std::string(item);
      workers.push_back(std::move(worker));
    }
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  if (workers.empty()) {
    return repro::invalid_argument("--workers needs at least one endpoint");
  }
  return workers;
}
}  // namespace

/// `repro-cli route`: run the reprod-router front proxy until
/// SIGTERM/SIGINT or a SHUTDOWN frame drains the fabric (docs/SERVICE.md
/// "Scale-out topology").
int cmd_route(const Args& args) {
  if (!args.has("socket") && !args.has("port")) {
    std::fprintf(stderr,
                 "route requires --socket PATH or --port N (0 = ephemeral)\n");
    return 2;
  }
  if (!args.has("workers")) {
    std::fprintf(stderr, "route requires --workers EP[=W],EP[=W],...\n");
    return 2;
  }
  svc::RouterOptions options;
  options.socket_path = args.get("socket", "");
  auto port = args.get_u64("port", 0);
  if (!port.is_ok()) return fail(port.status());
  options.port = static_cast<std::uint16_t>(port.value());
  auto workers = parse_worker_list(args.get("workers", ""));
  if (!workers.is_ok()) return fail(workers.status());
  options.workers = std::move(workers).value();
  auto health_ms = args.get_u64("health-interval-ms", 250);
  if (!health_ms.is_ok()) return fail(health_ms.status());
  options.health_interval = std::chrono::milliseconds(health_ms.value());
  auto upstream_ms = args.get_u64("upstream-timeout-ms", 30000);
  if (!upstream_ms.is_ok()) return fail(upstream_ms.status());
  options.upstream_timeout = std::chrono::milliseconds(upstream_ms.value());
  auto pool = args.get_u64("pool-per-worker", 4);
  if (!pool.is_ok()) return fail(pool.status());
  options.pool_per_worker = pool.value();
  auto max_frame = args.get_size("max-frame-bytes", svc::kDefaultMaxFrameBytes);
  if (!max_frame.is_ok()) return fail(max_frame.status());
  options.max_frame_bytes = static_cast<std::uint32_t>(max_frame.value());
  options.access_log_path = args.get("access-log", "");

  svc::Router router(std::move(options));
  repro::Status status = router.start();
  if (!status.is_ok()) return fail(status);
  g_router = &router;
  std::signal(SIGINT, router_signal_handler);
  std::signal(SIGTERM, router_signal_handler);

  std::printf("reprod-router listening on %s\n", router.endpoint().c_str());
  std::fflush(stdout);  // tests poll for this line before connecting
  status = router.serve();
  g_router = nullptr;
  if (!status.is_ok()) return fail(status);
  std::printf("drained; %zu workers live at exit\n", router.live_workers());
  if (g_run_report != nullptr) {
    g_run_report->set_verdict("drained");
    g_run_report->add_info("endpoint", router.endpoint());
  }
  return 0;
}

/// `repro-cli watch ROOT RUN --reference REF`: stream one run's captured
/// checkpoints to a reprod daemon as a live WATCH session. Only Merkle
/// digests cross the wire — the full node array on the first push, then
/// compute_tree_delta() deltas — and the daemon answers each push with a
/// verdict against the reference run's resident sidecar. Exit codes follow
/// the compare convention: 0 clean, 1 diverged, 2 error.
int cmd_watch(const Args& args) {
  if (args.positional().size() < 3 || !args.has("reference")) {
    std::fprintf(stderr, "watch requires ROOT RUN and --reference REF\n");
    return 2;
  }
  const std::string root = args.positional()[1];
  const std::string run = args.positional()[2];
  const std::string reference = args.get("reference", "");
  auto rank = args.get_u64("rank", 0);
  if (!rank.is_ok()) return fail(rank.status());
  auto params = tree_params_from(args);
  if (!params.is_ok()) return fail(params.status());

  svc::ClientOptions options;
  options.socket_path = args.get("socket", "");
  auto port = args.get_u64("port", 0);
  if (!port.is_ok()) return fail(port.status());
  options.port = static_cast<std::uint16_t>(port.value());
  options.host = args.get("host", "127.0.0.1");
  if (options.socket_path.empty() && options.port == 0) {
    std::fprintf(stderr, "watch requires --socket PATH or --port N\n");
    return 2;
  }
  auto timeout_ms = args.get_u64("timeout-ms", 30000);
  if (!timeout_ms.is_ok()) return fail(timeout_ms.status());
  options.timeout = std::chrono::milliseconds(timeout_ms.value());

  ckpt::HistoryCatalog catalog{root};
  auto refs = catalog.checkpoints(run);
  if (!refs.is_ok()) return fail(refs.status());
  std::vector<ckpt::CheckpointRef> work;
  for (auto& ref : refs.value()) {
    if (ref.rank == rank.value()) work.push_back(std::move(ref));
  }
  if (work.empty()) {
    std::fprintf(stderr, "no rank%llu checkpoints under %s/%s\n",
                 static_cast<unsigned long long>(rank.value()), root.c_str(),
                 run.c_str());
    return 2;
  }

  auto client = svc::Client::connect(options);
  if (!client.is_ok()) return fail(client.status());

  bool opened = false;
  bool diverged = false;
  merkle::MerkleTree previous;
  std::uint64_t previous_iteration = 0;
  for (const auto& ref : work) {
    auto reader = ckpt::CheckpointReader::open(ref.checkpoint_path);
    if (!reader.is_ok()) return fail(reader.status());
    auto data = reader.value().read_data();
    if (!data.is_ok()) return fail(data.status());
    auto tree = merkle::TreeBuilder(params.value(), par::Exec::parallel())
                    .build(data.value());
    if (!tree.is_ok()) return fail(tree.status());

    if (!opened) {
      std::string open_payload = "{\"root\":";
      repro::json_append_string(open_payload, root);
      open_payload += ",\"run\":";
      repro::json_append_string(open_payload, run);
      open_payload += ",\"reference\":";
      repro::json_append_string(open_payload, reference);
      open_payload += ",\"rank\":" + std::to_string(rank.value());
      open_payload +=
          ",\"data_bytes\":" + std::to_string(data.value().size());
      open_payload += ",\"eps\":";
      repro::json_append_number(open_payload,
                                params.value().hash.error_bound);
      open_payload +=
          ",\"chunk_bytes\":" + std::to_string(params.value().chunk_bytes);
      open_payload +=
          ",\"values_per_block\":" +
          std::to_string(params.value().hash.values_per_block) + "}";
      auto open_reply = client.value().watch_open(open_payload);
      if (!open_reply.is_ok()) return fail(open_reply.status());
      if (!open_reply.value().ok()) {
        std::fprintf(stderr, "WATCH_OPEN %s %s\n",
                     svc::wire_status_name(open_reply.value().status),
                     open_reply.value().payload.c_str());
        return 2;
      }
      std::printf("watching %s/%s rank%llu against %s (%zu checkpoints)\n",
                  root.c_str(), run.c_str(),
                  static_cast<unsigned long long>(rank.value()),
                  reference.c_str(), work.size());
      opened = true;
    }

    svc::WatchPushFrame frame;
    frame.iteration = ref.iteration;
    if (previous.num_chunks() == 0) {
      // First push: the complete node array, so the daemon can seed its
      // frontier without ever touching this run's files.
      const merkle::TreeView view(tree.value());
      const std::uint64_t num_nodes = view.layout().num_nodes();
      frame.entries.reserve(num_nodes);
      for (std::uint64_t i = 0; i < num_nodes; ++i) {
        frame.entries.push_back({i, view.node(i)});
      }
    } else {
      auto delta = merkle::compute_tree_delta(previous, tree.value(),
                                              previous_iteration,
                                              ref.iteration);
      if (!delta.is_ok()) return fail(delta.status());
      frame.delta = true;
      frame.entries = std::move(delta.value().nodes);
      if (frame.entries.empty()) {
        // Identical iteration: an empty push is a protocol violation, so
        // re-assert the (unchanged) root to advance the session's cursor.
        frame.entries.push_back({0, merkle::TreeView(tree.value()).node(0)});
      }
    }
    auto reply = client.value().watch_push(frame);
    if (!reply.is_ok()) return fail(reply.status());
    if (!reply.value().ok()) {
      std::fprintf(stderr, "WATCH_PUSH %s %s\n",
                   svc::wire_status_name(reply.value().status),
                   reply.value().payload.c_str());
      return 2;
    }
    const auto doc = telemetry::json_parse(reply.value().payload);
    std::string verdict = "?";
    std::uint64_t flagged = 0;
    std::uint64_t total = 0;
    if (doc.has_value() && doc->is_object()) {
      verdict = doc->string_or("verdict", "?");
      flagged = doc->u64_or("chunks_flagged", 0);
      total = doc->u64_or("chunks_total", 0);
    }
    std::printf("iter%-6llu %-12s", static_cast<unsigned long long>(
                                        ref.iteration),
                verdict.c_str());
    if (verdict == "divergent") {
      std::printf(" %llu/%llu chunks flagged",
                  static_cast<unsigned long long>(flagged),
                  static_cast<unsigned long long>(total));
      diverged = true;
    }
    std::printf(" (%zu digest entries%s)\n", frame.entries.size(),
                frame.delta ? ", delta" : ", full");
    previous = std::move(tree).value();
    previous_iteration = ref.iteration;
  }

  auto summary = client.value().watch_close();
  if (!summary.is_ok()) return fail(summary.status());
  std::printf("%s %s\n", svc::wire_status_name(summary.value().status),
              summary.value().payload.c_str());
  if (g_run_report != nullptr) {
    g_run_report->set_verdict(diverged ? "diverged" : "within-bound");
    g_run_report->add_info("run", run);
    g_run_report->add_info("reference", reference);
    g_run_report->add_value("iterations_pushed",
                            static_cast<double>(work.size()));
  }
  return diverged ? 1 : 0;
}

/// `repro-cli client OP ...`: one request against a running daemon. Prints
/// the response payload (JSON) and mirrors COMPARE verdicts into the usual
/// 0/1/2 exit-code contract.
int cmd_client(const Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "client requires an operation: ping | compare A B | "
                 "timeline ROOT RUN_A RUN_B | load-run ROOT RUN | stats | "
                 "shutdown\n");
    return 2;
  }
  svc::ClientOptions options;
  options.socket_path = args.get("socket", "");
  auto port = args.get_u64("port", 0);
  if (!port.is_ok()) return fail(port.status());
  options.port = static_cast<std::uint16_t>(port.value());
  options.host = args.get("host", "127.0.0.1");
  if (options.socket_path.empty() && options.port == 0) {
    std::fprintf(stderr, "client requires --socket PATH or --port N\n");
    return 2;
  }
  auto timeout_ms = args.get_u64("timeout-ms", 30000);
  if (!timeout_ms.is_ok()) return fail(timeout_ms.status());
  options.timeout = std::chrono::milliseconds(timeout_ms.value());

  const std::string& op = args.positional()[1];
  svc::Opcode opcode;
  std::string payload;
  auto add_eps = [&](std::string& out) {
    if (args.has("eps")) {
      auto eps = args.get_f64("eps", 1e-6);
      if (eps.is_ok()) {
        out += ",\"eps\":";
        repro::json_append_number(out, eps.value());
      }
    }
  };
  if (op == "ping") {
    opcode = svc::Opcode::kPing;
  } else if (op == "stats") {
    opcode = svc::Opcode::kStats;
  } else if (op == "metrics") {
    opcode = svc::Opcode::kMetrics;
  } else if (op == "shutdown") {
    opcode = svc::Opcode::kShutdown;
  } else if (op == "compare") {
    if (args.positional().size() < 4) {
      std::fprintf(stderr, "client compare requires A.ckpt B.ckpt\n");
      return 2;
    }
    opcode = svc::Opcode::kCompare;
    payload = "{\"file_a\":";
    repro::json_append_string(payload, args.positional()[2]);
    payload += ",\"file_b\":";
    repro::json_append_string(payload, args.positional()[3]);
    add_eps(payload);
    payload += '}';
  } else if (op == "timeline") {
    if (args.positional().size() < 5) {
      std::fprintf(stderr, "client timeline requires ROOT RUN_A RUN_B\n");
      return 2;
    }
    opcode = svc::Opcode::kTimeline;
    payload = "{\"root\":";
    repro::json_append_string(payload, args.positional()[2]);
    payload += ",\"run_a\":";
    repro::json_append_string(payload, args.positional()[3]);
    payload += ",\"run_b\":";
    repro::json_append_string(payload, args.positional()[4]);
    add_eps(payload);
    payload += '}';
  } else if (op == "load-run") {
    if (args.positional().size() < 4) {
      std::fprintf(stderr, "client load-run requires ROOT RUN\n");
      return 2;
    }
    opcode = svc::Opcode::kLoadRun;
    payload = "{\"root\":";
    repro::json_append_string(payload, args.positional()[2]);
    payload += ",\"run\":";
    repro::json_append_string(payload, args.positional()[3]);
    payload += '}';
  } else {
    std::fprintf(stderr, "unknown client operation '%s'\n", op.c_str());
    return 2;
  }

  auto client = svc::Client::connect(options);
  if (!client.is_ok()) return fail(client.status());
  auto response = client.value().call(opcode, payload);
  if (!response.is_ok()) return fail(response.status());
  if (opcode == svc::Opcode::kMetrics && response.value().ok()) {
    // The exposition page is multi-line plain text; print it verbatim so
    // `repro-cli client ... metrics | promtool check metrics` works.
    std::fputs(response.value().payload.c_str(), stdout);
    return 0;
  }
  std::printf("%s %s\n", svc::wire_status_name(response.value().status),
              response.value().payload.c_str());
  if (!response.value().ok()) return 2;
  if (opcode == svc::Opcode::kStats) {
    // Satellite readability: surface the build/uptime identity fields the
    // daemon now reports without making callers parse the JSON.
    const auto doc = telemetry::json_parse(response.value().payload);
    if (doc.has_value() && doc->is_object()) {
      std::printf("daemon %s (%s, %s, simd=%s), up %llus, "
                  "%llu watch sessions\n",
                  doc->string_or("version", "?").c_str(),
                  doc->string_or("compiler", "?").c_str(),
                  doc->string_or("build_type", "?").c_str(),
                  doc->string_or("simd_level", "?").c_str(),
                  static_cast<unsigned long long>(doc->u64_or("uptime_s", 0)),
                  static_cast<unsigned long long>(
                      doc->u64_or("watch_sessions", 0)));
    }
  }
  if (opcode == svc::Opcode::kCompare ||
      opcode == svc::Opcode::kTimeline) {
    // Mirror the server-side verdict into the exit code: COMPARE carries
    // it directly; TIMELINE diverged iff a first divergence was found.
    const auto doc = telemetry::json_parse(response.value().payload);
    if (doc.has_value() && doc->is_object()) {
      if (opcode == svc::Opcode::kCompare) {
        return static_cast<int>(doc->u64_or("exit_code", 0));
      }
      const telemetry::JsonValue* first =
          doc->find("first_divergent_iteration");
      return (first != nullptr &&
              first->kind != telemetry::JsonValue::Kind::kNull)
                 ? 1
                 : 0;
    }
  }
  return 0;
}

/// Re-serializes a parsed JsonValue (used by trace-merge to re-emit trace
/// events it did not need to understand, e.g. counter samples and args).
void append_json_value(std::string& out, const telemetry::JsonValue& value) {
  using Kind = telemetry::JsonValue::Kind;
  switch (value.kind) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += value.boolean ? "true" : "false";
      break;
    case Kind::kNumber:
      repro::json_append_number(out, value.number);
      break;
    case Kind::kString:
      repro::json_append_string(out, value.string);
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& item : value.array) {
        if (!first) out += ',';
        first = false;
        append_json_value(out, item);
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [key, item] : value.object) {
        if (!first) out += ',';
        first = false;
        repro::json_append_string(out, key);
        out += ':';
        append_json_value(out, item);
      }
      out += '}';
      break;
    }
  }
}

/// One completed span reconstructed from a Chrome trace's B/E event pair,
/// with the trace-context identity the tracer attaches to span args.
struct MergeSpan {
  std::string name;
  std::string op;
  std::string trace_id;
  std::string span_id;
  std::string parent_span_id;
  double begin_us = 0;
  double end_us = 0;

  [[nodiscard]] double midpoint_us() const { return (begin_us + end_us) / 2; }
};

/// Pairs B/E events per (pid, tid) stack and returns the completed spans
/// that carry a trace_id. Unbalanced events are tolerated and skipped.
std::vector<MergeSpan> collect_spans(const telemetry::JsonValue& events) {
  std::vector<MergeSpan> spans;
  std::map<std::string, std::vector<MergeSpan>> stacks;
  for (const auto& event : events.array) {
    if (!event.is_object()) continue;
    const std::string ph = event.string_or("ph", "");
    const std::string key = std::to_string(event.u64_or("pid", 0)) + "/" +
                            std::to_string(event.u64_or("tid", 0));
    if (ph == "B") {
      MergeSpan span;
      span.name = event.string_or("name", "");
      span.begin_us = event.number_or("ts", 0);
      if (const telemetry::JsonValue* span_args = event.find("args")) {
        span.op = span_args->string_or("op", "");
        span.trace_id = span_args->string_or("trace_id", "");
        span.span_id = span_args->string_or("span_id", "");
        span.parent_span_id = span_args->string_or("parent_span_id", "");
      }
      stacks[key].push_back(std::move(span));
    } else if (ph == "E") {
      auto& stack = stacks[key];
      if (stack.empty()) continue;
      MergeSpan span = std::move(stack.back());
      stack.pop_back();
      span.end_us = event.number_or("ts", span.begin_us);
      if (!span.trace_id.empty()) spans.push_back(std::move(span));
    }
  }
  return spans;
}

/// Re-emits one trace event with its pid forced to `pid` and (for non-
/// metadata events) its timestamp shifted by `ts_shift_us`.
void append_merged_event(std::string& out, const telemetry::JsonValue& event,
                         std::uint64_t pid, double ts_shift_us) {
  const bool metadata = event.string_or("ph", "") == "M";
  out += '{';
  bool first = true;
  bool saw_pid = false;
  for (const auto& [key, value] : event.object) {
    if (!first) out += ',';
    first = false;
    repro::json_append_string(out, key);
    out += ':';
    if (key == "pid") {
      repro::json_append_number(out, pid);
      saw_pid = true;
    } else if (key == "ts" && !metadata &&
               value.kind == telemetry::JsonValue::Kind::kNumber) {
      repro::json_append_number(out, value.number + ts_shift_us);
    } else {
      append_json_value(out, value);
    }
  }
  if (!saw_pid) {
    if (!first) out += ',';
    out += "\"pid\":";
    repro::json_append_number(out, pid);
  }
  out += '}';
}

/// `repro-cli trace-merge A B --out MERGED`: joins two --trace-out files
/// into one Chrome trace. Steady-clock timestamps from different processes
/// share no epoch, so the offset applied to file B is estimated from spans
/// the trace-context trailer causally linked across the files: a matched
/// (parent, child) pair should be centered on the same instant under
/// symmetric network delay, and PING round trips (no handler work) bound
/// the estimate tightest. No matched pair ⇒ offset 0 plus a warning.
int cmd_trace_merge(const Args& args) {
  if (args.positional().size() < 3 || !args.has("out")) {
    std::fprintf(stderr,
                 "trace-merge requires A.json B.json and --out FILE\n");
    return 2;
  }
  const std::string path_a = args.positional()[1];
  const std::string path_b = args.positional()[2];
  const std::string out_path = args.get("out", "");

  std::optional<telemetry::JsonValue> docs[2];
  const std::string* paths[2] = {&path_a, &path_b};
  const telemetry::JsonValue* events[2] = {nullptr, nullptr};
  for (int i = 0; i < 2; ++i) {
    auto bytes = repro::read_file(*paths[i]);
    if (!bytes.is_ok()) return fail(bytes.status());
    docs[i] = telemetry::json_parse(std::string(
        reinterpret_cast<const char*>(bytes.value().data()),
        bytes.value().size()));
    if (!docs[i].has_value() || !docs[i]->is_object()) {
      std::fprintf(stderr, "error: %s is not a JSON trace document\n",
                   paths[i]->c_str());
      return 2;
    }
    events[i] = docs[i]->find("traceEvents");
    if (events[i] == nullptr || !events[i]->is_array()) {
      std::fprintf(stderr, "error: %s has no traceEvents array\n",
                   paths[i]->c_str());
      return 2;
    }
  }

  const std::vector<MergeSpan> spans_a = collect_spans(*events[0]);
  const std::vector<MergeSpan> spans_b = collect_spans(*events[1]);

  // Matched causal pairs: same trace_id across the files, one span the
  // direct parent of the other. The parent is the request round trip and
  // the child the remote handler, whichever file each lives in, so the
  // midpoint-difference formula is direction-independent.
  double offset_sum = 0;
  std::uint64_t offset_count = 0;
  double ping_offset_sum = 0;
  std::uint64_t ping_offset_count = 0;
  for (const auto& a : spans_a) {
    for (const auto& b : spans_b) {
      if (a.trace_id != b.trace_id) continue;
      const bool a_parent =
          !a.span_id.empty() && b.parent_span_id == a.span_id;
      const bool b_parent =
          !b.span_id.empty() && a.parent_span_id == b.span_id;
      if (!a_parent && !b_parent) continue;
      const double offset = a.midpoint_us() - b.midpoint_us();
      offset_sum += offset;
      ++offset_count;
      if ((a_parent ? a.op : b.op) == "PING") {
        ping_offset_sum += offset;
        ++ping_offset_count;
      }
    }
  }
  double offset_us = 0;
  if (ping_offset_count > 0) {
    offset_us = ping_offset_sum / static_cast<double>(ping_offset_count);
  } else if (offset_count > 0) {
    offset_us = offset_sum / static_cast<double>(offset_count);
  } else {
    std::fprintf(stderr,
                 "warning: no spans share a trace_id across the files; "
                 "merging with zero clock offset\n");
  }

  std::string merged;
  merged.reserve(256);
  merged += "{\"traceEvents\":[";
  bool first = true;
  for (int i = 0; i < 2; ++i) {
    // Name each merged process after its source file so the viewer's
    // process lanes identify which side emitted which spans.
    if (!first) merged += ',';
    first = false;
    merged += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    merged += std::to_string(i + 1);
    merged += ",\"tid\":0,\"args\":{\"name\":";
    repro::json_append_string(merged, *paths[i]);
    merged += "}}";
    for (const auto& event : events[i]->array) {
      if (!event.is_object()) continue;
      merged += ',';
      append_merged_event(merged, event, static_cast<std::uint64_t>(i + 1),
                          i == 0 ? 0.0 : offset_us);
    }
  }
  merged += "],\"otherData\":{\"clock_offset_us\":";
  repro::json_append_number(merged, offset_us);
  merged += ",\"matched_span_pairs\":";
  repro::json_append_number(merged,
                            static_cast<std::uint64_t>(offset_count));
  merged += "}}";

  const repro::Status status = repro::write_file(
      out_path, std::span<const std::uint8_t>(
                    reinterpret_cast<const std::uint8_t*>(merged.data()),
                    merged.size()));
  if (!status.is_ok()) return fail(status);
  std::printf("merged %zu + %zu events into %s "
              "(%llu matched span pairs, clock offset %+.1f us; "
              "load in https://ui.perfetto.dev)\n",
              events[0]->array.size(), events[1]->array.size(),
              out_path.c_str(),
              static_cast<unsigned long long>(offset_count), offset_us);
  if (g_run_report != nullptr) {
    g_run_report->set_verdict("merged");
    g_run_report->add_value("matched_span_pairs",
                            static_cast<double>(offset_count));
    g_run_report->add_value("clock_offset_us", offset_us);
  }
  return 0;
}

int dispatch(const std::string& command, const Args& args) {
  if (command == "simulate") return cmd_simulate(args);
  if (command == "tree") return cmd_tree(args);
  if (command == "compare") return cmd_compare(args);
  if (command == "history") return cmd_history(args);
  if (command == "timeline") return cmd_timeline(args);
  if (command == "inspect") return cmd_inspect(args);
  if (command == "info") return cmd_info(args);
  if (command == "migrate") return cmd_migrate(args);
  if (command == "fields") return cmd_fields(args);
  if (command == "prove") return cmd_prove(args);
  if (command == "verify") return cmd_verify(args);
  if (command == "delta") return cmd_delta(args);
  if (command == "serve") return cmd_serve(args);
  if (command == "route") return cmd_route(args);
  if (command == "watch") return cmd_watch(args);
  if (command == "client") return cmd_client(args);
  if (command == "trace-merge") return cmd_trace_merge(args);
  // Explicit usage-error path: say what was wrong, then the usage text,
  // and exit 2 like every other misuse (not a silent fallthrough).
  std::fprintf(stderr, "error: unknown subcommand '%s'\n", command.c_str());
  print_usage();
  return 2;
}

int run(int argc, const char* const* argv) {
  auto args = Args::parse(argc - 1, argv + 1);
  if (!args.is_ok()) return fail(args.status());
  if (args.value().positional().empty()) {
    print_usage();
    return 2;
  }
  const std::string& command = args.value().positional().front();

  // Telemetry plumbing shared by every subcommand. Tracing must be enabled
  // before any work runs; the outputs publish after the command finishes,
  // whatever its exit code, so failed runs can still be diagnosed.
  const std::string trace_out = args.value().get("trace-out", "");
  const std::string metrics_out = args.value().get("metrics-out", "");
  telemetry::ResourceSampler sampler;
  if (!trace_out.empty()) {
    telemetry::Tracer::global().set_enabled(true);
    // Live resource counters ride along in every trace: RSS, CPU, I/O and
    // the internal queue-depth gauges, as Chrome "C"-phase samples.
    auto period = args.value().get_u64("sample-period-ms", 50);
    if (!period.is_ok()) return fail(period.status());
    telemetry::ResourceSampler::Options sampler_options;
    sampler_options.period =
        std::chrono::milliseconds(std::max<std::uint64_t>(1, period.value()));
    sampler.start(sampler_options);
  }
  telemetry::RunReport run_report(command);
  if (!metrics_out.empty()) g_run_report = &run_report;

  const int exit_code = dispatch(command, args.value());

  g_run_report = nullptr;
  if (!trace_out.empty()) {
    sampler.stop();  // final sample lands before the trace is serialized
    telemetry::Tracer::global().set_enabled(false);
    const repro::Status status =
        telemetry::Tracer::global().write_chrome_trace(trace_out);
    if (!status.is_ok()) return fail(status);
    std::printf("trace written to %s (%llu spans, %llu counter samples; "
                "load in https://ui.perfetto.dev)\n",
                trace_out.c_str(),
                static_cast<unsigned long long>(
                    telemetry::Tracer::global().span_count()),
                static_cast<unsigned long long>(
                    telemetry::Tracer::global().counter_count()));
  }
  if (!metrics_out.empty()) {
    run_report.add_value("exit_code", static_cast<double>(exit_code));
    run_report.set_metrics(telemetry::MetricsRegistry::global().snapshot());
    const repro::Status status = run_report.write_json(metrics_out);
    if (!status.is_ok()) return fail(status);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  return exit_code;
}

}  // namespace
}  // namespace repro::cli

int main(int argc, char** argv) { return repro::cli::run(argc, argv); }
