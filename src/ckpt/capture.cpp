#include "ckpt/capture.hpp"

#include "common/fs.hpp"
#include "common/log.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace repro::ckpt {
namespace {

struct CaptureMetrics {
  telemetry::Counter& checkpoints;
  telemetry::Counter& bytes;
  telemetry::Counter& metadata_bytes;
  telemetry::Histogram& foreground_seconds;
  telemetry::Histogram& flush_seconds;

  static CaptureMetrics& get() {
    auto& registry = telemetry::MetricsRegistry::global();
    static CaptureMetrics* metrics = new CaptureMetrics{
        registry.counter("capture.checkpoints"),
        registry.counter("capture.bytes"),
        registry.counter("capture.metadata_bytes"),
        registry.histogram("capture.foreground.seconds",
                           telemetry::latency_buckets_seconds()),
        registry.histogram("capture.flush.seconds",
                           telemetry::latency_buckets_seconds()),
    };
    return *metrics;
  }
};

}  // namespace

CaptureEngine::CaptureEngine(std::filesystem::path local_dir,
                             HistoryCatalog catalog, CaptureOptions options)
    : local_dir_(std::move(local_dir)),
      catalog_(std::move(catalog)),
      options_(std::move(options)) {
  std::filesystem::create_directories(local_dir_);
}

CaptureEngine::~CaptureEngine() {
  const repro::Status status = wait_all();
  if (!status.is_ok()) {
    REPRO_LOG_ERROR << "capture flush failed during shutdown: "
                    << status.to_string();
  }
}

repro::Status CaptureEngine::capture(const CheckpointWriter& writer) {
  Stopwatch foreground;
  const CheckpointInfo& info = writer.info();
  telemetry::TraceSpan capture_span("capture.checkpoint");
  capture_span.arg("run", info.run_id)
      .arg("iteration", static_cast<std::uint64_t>(info.iteration))
      .arg("rank", static_cast<std::uint64_t>(info.rank));

  // Level 1: node-local write (the only part the application waits for).
  const auto local_name = info.run_id + "-iter" +
                          std::to_string(info.iteration) + "-rank" +
                          std::to_string(info.rank) + ".ckpt";
  const auto local_path = local_dir_ / local_name;
  {
    telemetry::TraceSpan span("capture.local_write");
    span.arg("bytes",
             static_cast<std::uint64_t>(writer.data_section().size()));
    REPRO_RETURN_IF_ERROR(writer.write(local_path));
  }

  // Capture-time Merkle metadata from the resident bytes (Algorithm 1 runs
  // "during application execution ... at checkpoint time").
  std::vector<std::uint8_t> metadata;
  if (options_.build_metadata) {
    telemetry::TraceSpan span("capture.tree_build");
    merkle::TreeBuilder builder(options_.tree, options_.exec);
    REPRO_ASSIGN_OR_RETURN(const merkle::MerkleTree tree,
                           builder.build(writer.data_section()));
    metadata = options_.sidecar_format == merkle::SidecarWriteFormat::kFlatV2
                   ? merkle::flat_serialize(tree)
                   : tree.serialize();
  }

  {
    // The flusher thread updates stats_ concurrently; both sides lock.
    std::lock_guard<std::mutex> lock(mu_);
    stats_.foreground_seconds += foreground.seconds();
    stats_.checkpoints_captured += 1;
    stats_.bytes_captured += writer.data_section().size();
    stats_.metadata_bytes += metadata.size();
  }
  CaptureMetrics& metrics = CaptureMetrics::get();
  metrics.checkpoints.increment();
  metrics.bytes.add(writer.data_section().size());
  metrics.metadata_bytes.add(metadata.size());
  metrics.foreground_seconds.record(foreground.seconds());

  // Level 2: background flush to the PFS.
  flusher_.submit([this, local_path, metadata = std::move(metadata),
                   run_id = info.run_id, iteration = info.iteration,
                   rank = info.rank] {
    Stopwatch flush;
    telemetry::TraceSpan span("capture.flush");
    span.arg("iteration", static_cast<std::uint64_t>(iteration))
        .arg("rank", static_cast<std::uint64_t>(rank));
    repro::Status status;
    auto ref_result = catalog_.make_ref(run_id, iteration, rank);
    if (!ref_result.is_ok()) {
      status = ref_result.status();
    } else {
      const CheckpointRef& ref = ref_result.value();
      // Atomic publishes: a crash mid-flush leaves at most an orphaned
      // temp file (invisible to the catalog), never a torn .ckpt/.rmrk.
      status = repro::copy_file_atomic(local_path, ref.checkpoint_path)
                   .with_context("flushing checkpoint to PFS");
      if (status.is_ok() && !metadata.empty()) {
        status = repro::write_file(ref.metadata_path, metadata)
                     .with_context("flushing merkle metadata");
      }
    }
    CaptureMetrics::get().flush_seconds.record(flush.seconds());
    std::lock_guard<std::mutex> lock(mu_);
    stats_.flush_seconds += flush.seconds();
    if (flush_status_.is_ok() && !status.is_ok()) {
      flush_status_ = std::move(status);
    }
  });

  return repro::Status::ok();
}

repro::Status CaptureEngine::wait_all() {
  flusher_.wait_idle();
  std::lock_guard<std::mutex> lock(mu_);
  return flush_status_;
}

CaptureStats CaptureEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace repro::ckpt
