// Checkpoint file format ("RCKP", version 1).
//
// Models the VELOC-captured HACC checkpoints of Table 1: a set of named
// typed fields (X, Y, Z, VX, VY, VZ, PHI — all F32 for HACC) captured for
// one (run, iteration, rank). Layout:
//
//   [header, padded to 4 KiB] [data section: field payloads, concatenated]
//
// The Merkle tree covers the *data section only*, so two runs whose headers
// differ (run ids of different length) still chunk identically, and the data
// section starts 4 KiB-aligned, which keeps scattered chunk reads aligned.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "merkle/tree.hpp"

namespace repro::ckpt {

/// Fixed header region size; header + field table must fit.
inline constexpr std::uint64_t kHeaderBytes = 4096;

struct FieldInfo {
  std::string name;
  merkle::ValueKind kind = merkle::ValueKind::kF32;
  std::uint64_t element_count = 0;
  /// Byte offset of this field's payload within the data section.
  std::uint64_t data_offset = 0;

  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return element_count * merkle::value_size(kind);
  }
};

struct CheckpointInfo {
  std::string application;  ///< e.g. "haccette"
  std::string run_id;       ///< e.g. "run-1"
  std::uint64_t iteration = 0;
  std::uint32_t rank = 0;
  std::vector<FieldInfo> fields;

  [[nodiscard]] std::uint64_t data_bytes() const noexcept {
    std::uint64_t total = 0;
    for (const auto& field : fields) total += field.byte_size();
    return total;
  }

  /// Field containing data-section byte `offset`, or nullptr.
  [[nodiscard]] const FieldInfo* field_at(std::uint64_t offset) const noexcept;
};

/// Accumulates fields in memory, then writes header + data in one pass.
class CheckpointWriter {
 public:
  CheckpointWriter(std::string application, std::string run_id,
                   std::uint64_t iteration, std::uint32_t rank);

  /// Append a field; data is copied. Field names must be unique.
  repro::Status add_field_f32(std::string name, std::span<const float> values);
  repro::Status add_field_f64(std::string name,
                              std::span<const double> values);
  repro::Status add_field_bytes(std::string name,
                                std::span<const std::uint8_t> bytes);

  [[nodiscard]] const CheckpointInfo& info() const noexcept { return info_; }
  [[nodiscard]] std::span<const std::uint8_t> data_section() const noexcept {
    return data_;
  }

  /// Write the checkpoint file.
  repro::Status write(const std::filesystem::path& path) const;

 private:
  repro::Status add_field(std::string name, merkle::ValueKind kind,
                          std::span<const std::uint8_t> bytes,
                          std::uint64_t element_count);

  CheckpointInfo info_;
  std::vector<std::uint8_t> data_;
};

/// Parses the header of a checkpoint file; field data is read on demand so
/// the comparison runtime never loads bulk data it can prune.
class CheckpointReader {
 public:
  static repro::Result<CheckpointReader> open(
      const std::filesystem::path& path);

  [[nodiscard]] const CheckpointInfo& info() const noexcept { return info_; }
  [[nodiscard]] const std::filesystem::path& path() const noexcept {
    return path_;
  }
  /// File offset of the data section (== kHeaderBytes for version 1).
  [[nodiscard]] std::uint64_t data_offset() const noexcept {
    return kHeaderBytes;
  }
  [[nodiscard]] std::uint64_t data_bytes() const noexcept {
    return info_.data_bytes();
  }

  /// Read the whole data section (used by capture-time tree building and by
  /// the AllClose baseline, which has no streaming).
  [[nodiscard]] repro::Result<std::vector<std::uint8_t>> read_data() const;

  /// Read one field's payload.
  [[nodiscard]] repro::Result<std::vector<std::uint8_t>> read_field(
      std::string_view name) const;

 private:
  std::filesystem::path path_;
  CheckpointInfo info_;
};

/// Serialize / parse the header block (exposed for tests).
repro::Result<std::vector<std::uint8_t>> encode_header(
    const CheckpointInfo& info);
repro::Result<CheckpointInfo> decode_header(
    std::span<const std::uint8_t> header);

}  // namespace repro::ckpt
