#include "ckpt/delta_store.hpp"

#include <algorithm>
#include <charconv>

#include "common/bytes.hpp"
#include "common/fs.hpp"
#include "merkle/compare.hpp"

namespace repro::ckpt {

namespace {
constexpr std::uint32_t kMagic = 0x544C4452;  // "RDLT"
constexpr std::uint32_t kVersion = 1;

/// Delta/base file payload: header + chunk records.
struct DeltaHeader {
  std::uint64_t iteration;
  std::uint64_t data_bytes;   ///< full checkpoint size
  std::uint64_t chunk_bytes;
  std::uint64_t chunk_count;  ///< records in this file
  bool is_base;
};

void encode_delta(const DeltaHeader& header,
                  std::span<const std::uint64_t> chunks,
                  std::span<const std::uint8_t> data,
                  std::uint64_t chunk_bytes,
                  std::vector<std::uint8_t>& out) {
  ByteWriter writer(out);
  writer.put_u32(kMagic);
  writer.put_u32(kVersion);
  writer.put_u8(header.is_base ? 1 : 0);
  writer.put_u64(header.iteration);
  writer.put_u64(header.data_bytes);
  writer.put_u64(header.chunk_bytes);
  writer.put_u64(chunks.size());
  for (const std::uint64_t chunk : chunks) {
    const std::uint64_t begin = chunk * chunk_bytes;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + chunk_bytes, data.size());
    writer.put_u64(chunk);
    writer.put_u64(end - begin);
    writer.put_bytes(data.subspan(begin, end - begin));
  }
}

repro::Status apply_delta(std::span<const std::uint8_t> file,
                          std::vector<std::uint8_t>& data,
                          DeltaHeader* header_out) {
  ByteReader reader(file);
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.get_u32());
  if (magic != kMagic) return repro::corrupt_data("bad delta magic");
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t version, reader.get_u32());
  if (version != kVersion) return repro::unsupported("bad delta version");
  DeltaHeader header{};
  REPRO_ASSIGN_OR_RETURN(const std::uint8_t is_base, reader.get_u8());
  header.is_base = is_base != 0;
  REPRO_ASSIGN_OR_RETURN(header.iteration, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(header.data_bytes, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(header.chunk_bytes, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(header.chunk_count, reader.get_u64());

  if (header.is_base) {
    data.assign(header.data_bytes, 0);
  } else if (data.size() != header.data_bytes) {
    return repro::corrupt_data("delta applied to wrong-size base");
  }
  for (std::uint64_t i = 0; i < header.chunk_count; ++i) {
    REPRO_ASSIGN_OR_RETURN(const std::uint64_t chunk, reader.get_u64());
    REPRO_ASSIGN_OR_RETURN(const std::uint64_t length, reader.get_u64());
    const std::uint64_t begin = chunk * header.chunk_bytes;
    if (begin + length > data.size()) {
      return repro::corrupt_data("delta chunk out of range");
    }
    REPRO_RETURN_IF_ERROR(
        reader.get_bytes(std::span<std::uint8_t>(data.data() + begin, length)));
  }
  if (header_out != nullptr) *header_out = header;
  return repro::Status::ok();
}

}  // namespace

std::filesystem::path DeltaStore::data_path(std::uint64_t iteration,
                                            bool base) const {
  return dir_ / ((base ? "base.iter" : "delta.iter") +
                 std::to_string(iteration) + ".rdlt");
}

std::filesystem::path DeltaStore::tree_path(std::uint64_t iteration) const {
  return dir_ / ("iter" + std::to_string(iteration) + ".rmrk");
}

repro::Result<DeltaStore> DeltaStore::open(std::filesystem::path root,
                                           std::string run_id,
                                           std::uint32_t rank,
                                           DeltaStoreOptions options) {
  REPRO_RETURN_IF_ERROR(merkle::validate(options.tree));
  const std::filesystem::path dir =
      root / run_id / ("rank" + std::to_string(rank));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return repro::io_error("mkdir " + dir.string() + ": " + ec.message());
  }
  return DeltaStore(dir, std::move(options));
}

repro::Status DeltaStore::append(std::uint64_t iteration,
                                 std::span<const std::uint8_t> data) {
  if (!iterations_.empty() && iteration <= iterations_.back()) {
    return repro::invalid_argument(
        "iterations must be appended in increasing order");
  }

  merkle::TreeBuilder builder(options_.tree, options_.exec);
  REPRO_ASSIGN_OR_RETURN(merkle::MerkleTree new_tree, builder.build(data));

  const bool is_base = iterations_.empty();
  std::vector<std::uint64_t> changed;
  if (is_base) {
    changed.resize(new_tree.num_chunks());
    for (std::uint64_t chunk = 0; chunk < new_tree.num_chunks(); ++chunk) {
      changed[chunk] = chunk;
    }
    effective_.assign(data.begin(), data.end());
    effective_tree_ = std::move(new_tree);
  } else {
    if (effective_.size() != data.size()) {
      return repro::failed_precondition(
          "checkpoint size changed between iterations");
    }
    // Diff against the *effective* state so elision never drifts more than
    // one error bound from the captured data.
    merkle::TreeCompareOptions compare_options;
    compare_options.exec = options_.exec;
    REPRO_ASSIGN_OR_RETURN(
        changed,
        merkle::compare_trees(effective_tree_, new_tree, compare_options));
    for (const std::uint64_t chunk : changed) {
      const auto [begin, end] = new_tree.chunk_range(chunk);
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(begin),
                data.begin() + static_cast<std::ptrdiff_t>(end),
                effective_.begin() + static_cast<std::ptrdiff_t>(begin));
    }
    // Only the stored chunks' paths changed: incremental update instead of
    // a full O(n) rebuild.
    REPRO_RETURN_IF_ERROR(
        builder.update_leaves(effective_tree_, effective_, changed));
  }

  DeltaHeader header{iteration, data.size(), options_.tree.chunk_bytes,
                     changed.size(), is_base};
  std::vector<std::uint8_t> file;
  encode_delta(header, changed, effective_, options_.tree.chunk_bytes, file);
  REPRO_RETURN_IF_ERROR(repro::write_file(data_path(iteration, is_base), file)
                            .with_context("writing delta"));
  // Flat v2 sidecar: timeline/compare reads map it in place (loads via
  // MerkleTree::load stay compatible through the format-detecting shim).
  REPRO_RETURN_IF_ERROR(merkle::save_flat(effective_tree_,
                                          tree_path(iteration)));

  stats_.captures += 1;
  stats_.raw_bytes += data.size();
  stats_.stored_bytes += file.size();
  stats_.metadata_bytes += effective_tree_.metadata_bytes();
  stats_.chunks_total += effective_tree_.num_chunks();
  stats_.chunks_stored += changed.size();

  iterations_.push_back(iteration);
  return repro::Status::ok();
}

repro::Result<std::vector<std::uint8_t>> DeltaStore::reconstruct(
    std::uint64_t iteration) const {
  const auto end = std::find(iterations_.begin(), iterations_.end(), iteration);
  if (end == iterations_.end()) {
    return repro::not_found("iteration " + std::to_string(iteration) +
                            " not in delta store");
  }
  std::vector<std::uint8_t> data;
  for (auto it = iterations_.begin(); it <= end; ++it) {
    const bool is_base = it == iterations_.begin();
    REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> file,
                           repro::read_file(data_path(*it, is_base)));
    REPRO_RETURN_IF_ERROR(apply_delta(file, data, nullptr));
  }
  return data;
}

repro::Result<merkle::MerkleTree> DeltaStore::tree(
    std::uint64_t iteration) const {
  return merkle::MerkleTree::load(tree_path(iteration));
}

repro::Result<DeltaStore> DeltaStore::load(std::filesystem::path root,
                                           std::string run_id,
                                           std::uint32_t rank,
                                           DeltaStoreOptions options) {
  REPRO_ASSIGN_OR_RETURN(DeltaStore store,
                         open(std::move(root), std::move(run_id), rank,
                              std::move(options)));
  // Scan iteration numbers from the tree sidecars.
  std::error_code ec;
  std::vector<std::uint64_t> iterations;
  for (const auto& entry :
       std::filesystem::directory_iterator(store.dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("iter") || !name.ends_with(".rmrk")) continue;
    std::uint64_t iteration = 0;
    const auto* begin = name.data() + 4;
    const auto* end = name.data() + name.size() - 5;
    const auto [ptr, parse_ec] = std::from_chars(begin, end, iteration);
    if (parse_ec != std::errc{} || ptr != end) continue;
    iterations.push_back(iteration);
  }
  if (ec) {
    return repro::io_error("scanning " + store.dir_.string() + ": " +
                           ec.message());
  }
  std::sort(iterations.begin(), iterations.end());
  store.iterations_ = std::move(iterations);
  if (!store.iterations_.empty()) {
    REPRO_ASSIGN_OR_RETURN(store.effective_tree_,
                           store.tree(store.iterations_.back()));
    REPRO_ASSIGN_OR_RETURN(store.effective_,
                           store.reconstruct(store.iterations_.back()));
  }
  return store;
}

}  // namespace repro::ckpt
