#include "ckpt/delta_store.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <unordered_set>

#include "common/bytes.hpp"
#include "common/fs.hpp"
#include "common/log.hpp"
#include "merkle/compare.hpp"
#include "merkle/flat.hpp"

namespace repro::ckpt {

namespace {
constexpr std::uint32_t kMagic = 0x544C4452;  // "RDLT"
constexpr std::uint32_t kVersion = 1;
/// Fixed prefix of every .rdlt file: magic, version, is_base, iteration,
/// data_bytes, chunk_bytes, chunk_count.
constexpr std::size_t kDeltaHeaderBytes = 4 + 4 + 1 + 8 + 8 + 8 + 8;

/// Delta/base file payload: header + chunk records.
struct DeltaHeader {
  std::uint64_t iteration;
  std::uint64_t data_bytes;   ///< full checkpoint size
  std::uint64_t chunk_bytes;
  std::uint64_t chunk_count;  ///< records in this file
  bool is_base;
};

void encode_delta(const DeltaHeader& header,
                  std::span<const std::uint64_t> chunks,
                  std::span<const std::uint8_t> data,
                  std::uint64_t chunk_bytes,
                  std::vector<std::uint8_t>& out) {
  ByteWriter writer(out);
  writer.put_u32(kMagic);
  writer.put_u32(kVersion);
  writer.put_u8(header.is_base ? 1 : 0);
  writer.put_u64(header.iteration);
  writer.put_u64(header.data_bytes);
  writer.put_u64(header.chunk_bytes);
  writer.put_u64(chunks.size());
  for (const std::uint64_t chunk : chunks) {
    const std::uint64_t begin = chunk * chunk_bytes;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + chunk_bytes, data.size());
    writer.put_u64(chunk);
    writer.put_u64(end - begin);
    writer.put_bytes(data.subspan(begin, end - begin));
  }
}

repro::Result<DeltaHeader> decode_delta_header(ByteReader& reader) {
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.get_u32());
  if (magic != kMagic) return repro::corrupt_data("bad delta magic");
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t version, reader.get_u32());
  if (version != kVersion) return repro::unsupported("bad delta version");
  DeltaHeader header{};
  REPRO_ASSIGN_OR_RETURN(const std::uint8_t is_base, reader.get_u8());
  header.is_base = is_base != 0;
  REPRO_ASSIGN_OR_RETURN(header.iteration, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(header.data_bytes, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(header.chunk_bytes, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(header.chunk_count, reader.get_u64());
  return header;
}

repro::Status apply_delta(std::span<const std::uint8_t> file,
                          std::vector<std::uint8_t>& data,
                          DeltaHeader* header_out) {
  ByteReader reader(file);
  REPRO_ASSIGN_OR_RETURN(DeltaHeader header, decode_delta_header(reader));

  // Bounds sanity before any allocation or arithmetic: every field below is
  // attacker-controlled on a corrupt file, and `chunk * chunk_bytes` or
  // `begin + length` would wrap uint64_t for huge values, sailing past a
  // naive `begin + length > data.size()` check into an OOB write.
  if (header.chunk_bytes == 0) {
    return repro::corrupt_data("delta chunk_bytes is zero");
  }
  // No-wrap form of ceil(data_bytes / chunk_bytes).
  const std::uint64_t num_chunks =
      header.data_bytes / header.chunk_bytes +
      (header.data_bytes % header.chunk_bytes != 0 ? 1 : 0);
  if (header.chunk_count > num_chunks) {
    return repro::corrupt_data("delta chunk_count exceeds checkpoint chunks");
  }
  if (header.is_base) {
    // A base file carries every stored byte inline, so data_bytes can never
    // exceed the file size — reject before the allocation, not after OOM.
    if (header.data_bytes > file.size()) {
      return repro::corrupt_data("base delta data_bytes exceeds file size");
    }
    data.assign(header.data_bytes, 0);
  } else if (data.size() != header.data_bytes) {
    return repro::corrupt_data("delta applied to wrong-size base");
  }
  for (std::uint64_t i = 0; i < header.chunk_count; ++i) {
    REPRO_ASSIGN_OR_RETURN(const std::uint64_t chunk, reader.get_u64());
    REPRO_ASSIGN_OR_RETURN(const std::uint64_t length, reader.get_u64());
    if (chunk >= num_chunks) {
      return repro::corrupt_data("delta chunk index out of range");
    }
    // chunk < num_chunks makes this multiplication wrap-free and keeps
    // begin < data_bytes; the writer emits exactly the chunk's extent.
    const std::uint64_t begin = chunk * header.chunk_bytes;
    const std::uint64_t expected =
        std::min<std::uint64_t>(header.chunk_bytes,
                                header.data_bytes - begin);
    if (length != expected) {
      return repro::corrupt_data("delta chunk length mismatch");
    }
    REPRO_RETURN_IF_ERROR(
        reader.get_bytes(std::span<std::uint8_t>(data.data() + begin, length)));
  }
  if (header_out != nullptr) *header_out = header;
  return repro::Status::ok();
}

/// Header of an on-disk .rdlt without reading the payload (load-time
/// validation over possibly large data files).
repro::Result<DeltaHeader> peek_delta_header(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return repro::io_error("open " + path.string());
  std::uint8_t buffer[kDeltaHeaderBytes];
  in.read(reinterpret_cast<char*>(buffer), sizeof(buffer));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(buffer))) {
    return repro::corrupt_data("delta file shorter than its header: " +
                               path.string());
  }
  ByteReader reader(std::span<const std::uint8_t>(buffer, sizeof(buffer)));
  return decode_delta_header(reader);
}

/// What flat_serialize(tree) would produce, without producing it — the
/// full-per-iteration baseline for the metadata dedup accounting.
std::uint64_t full_sidecar_bytes(const merkle::MerkleTree& tree) {
  merkle::FlatBuilder builder;
  (void)builder.add("", tree);
  return builder.output_bytes();
}

}  // namespace

std::filesystem::path DeltaStore::data_path(std::uint64_t iteration,
                                            bool base) const {
  return dir_ / ((base ? "base.iter" : "delta.iter") +
                 std::to_string(iteration) + ".rdlt");
}

std::filesystem::path DeltaStore::tree_path(std::uint64_t iteration) const {
  return dir_ / ("iter" + std::to_string(iteration) + ".rmrk");
}

repro::Result<DeltaStore> DeltaStore::open(std::filesystem::path root,
                                           std::string run_id,
                                           std::uint32_t rank,
                                           DeltaStoreOptions options) {
  REPRO_RETURN_IF_ERROR(merkle::validate(options.tree));
  const std::filesystem::path dir =
      root / run_id / ("rank" + std::to_string(rank));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return repro::io_error("mkdir " + dir.string() + ": " + ec.message());
  }
  return DeltaStore(dir, std::move(options));
}

repro::Status DeltaStore::append(std::uint64_t iteration,
                                 std::span<const std::uint8_t> data) {
  if (!iterations_.empty() && iteration <= iterations_.back()) {
    return repro::invalid_argument(
        "iterations must be appended in increasing order");
  }

  const bool is_base = iterations_.empty();
  const bool is_anchor =
      is_base || (options_.anchor_interval > 0 &&
                  appends_since_anchor_ >= options_.anchor_interval);

  std::vector<std::uint64_t> changed;
  merkle::TreeDelta tree_delta;
  bool have_tree_delta = false;
  merkle::TreeBuilder builder(options_.tree, options_.exec);
  if (is_base) {
    REPRO_ASSIGN_OR_RETURN(merkle::MerkleTree new_tree, builder.build(data));
    changed.resize(new_tree.num_chunks());
    for (std::uint64_t chunk = 0; chunk < new_tree.num_chunks(); ++chunk) {
      changed[chunk] = chunk;
    }
    effective_.assign(data.begin(), data.end());
    effective_tree_ = std::move(new_tree);
  } else {
    if (effective_.size() != data.size()) {
      return repro::failed_precondition(
          "checkpoint size changed between iterations");
    }
    REPRO_ASSIGN_OR_RETURN(merkle::MerkleTree new_tree, builder.build(data));
    // Diff against the *effective* state so elision never drifts more than
    // one error bound from the captured data.
    merkle::TreeCompareOptions compare_options;
    compare_options.exec = options_.exec;
    REPRO_ASSIGN_OR_RETURN(
        changed,
        merkle::compare_trees(effective_tree_, new_tree, compare_options));
    for (const std::uint64_t chunk : changed) {
      const auto [begin, end] = new_tree.chunk_range(chunk);
      std::copy(data.begin() + static_cast<std::ptrdiff_t>(begin),
                data.begin() + static_cast<std::ptrdiff_t>(end),
                effective_.begin() + static_cast<std::ptrdiff_t>(begin));
    }
    // Only the stored chunks' paths changed: snapshot their old digests,
    // update incrementally (no O(n) rebuild), and the post-update digests
    // that actually differ form the RMFD delta for this iteration.
    const std::vector<std::uint64_t> dirty =
        merkle::dirty_node_indices(effective_tree_.layout(), changed);
    std::vector<hash::Digest128> old_digests;
    old_digests.reserve(dirty.size());
    for (const std::uint64_t index : dirty) {
      old_digests.push_back(effective_tree_.node(index));
    }
    REPRO_RETURN_IF_ERROR(
        builder.update_leaves(effective_tree_, effective_, changed));
    tree_delta.iteration = iteration;
    tree_delta.base_iteration = iterations_.back();
    tree_delta.params = effective_tree_.params();
    tree_delta.data_bytes = effective_tree_.data_bytes();
    tree_delta.num_leaves = effective_tree_.layout().num_leaves;
    for (std::size_t i = 0; i < dirty.size(); ++i) {
      if (!(old_digests[i] == effective_tree_.node(dirty[i]))) {
        tree_delta.nodes.push_back(
            {dirty[i], effective_tree_.node(dirty[i])});
      }
    }
    have_tree_delta = true;
  }

  DeltaHeader header{iteration, data.size(), options_.tree.chunk_bytes,
                     is_anchor ? effective_tree_.num_chunks() : changed.size(),
                     is_anchor};
  std::vector<std::uint8_t> file;
  if (is_anchor && !is_base) {
    // Anchor: full snapshot so later reconstructs replay at most
    // anchor_interval deltas.
    std::vector<std::uint64_t> all(effective_tree_.num_chunks());
    for (std::uint64_t chunk = 0; chunk < all.size(); ++chunk) {
      all[chunk] = chunk;
    }
    encode_delta(header, all, effective_, options_.tree.chunk_bytes, file);
  } else {
    header.chunk_count = changed.size();
    encode_delta(header, changed, effective_, options_.tree.chunk_bytes,
                 file);
  }
  REPRO_RETURN_IF_ERROR(repro::write_file(data_path(iteration, is_anchor),
                                          file)
                            .with_context("writing delta"));

  // Sidecar: full flat v2 tree at anchors (carrying the RMFD delta too, so
  // incremental consumers keep the per-step diff), differential RMFD-only
  // otherwise. Loads via MerkleTree::load / resolve_delta_chain stay
  // compatible through the format-detecting shims.
  std::uint64_t sidecar_bytes = 0;
  if (!options_.differential_metadata || is_anchor) {
    merkle::FlatBuilder sidecar;
    REPRO_RETURN_IF_ERROR(sidecar.add("", effective_tree_));
    if (have_tree_delta && options_.differential_metadata) {
      sidecar.set_delta(tree_delta);
    }
    const std::vector<std::uint8_t> bytes = sidecar.finish();
    sidecar_bytes = bytes.size();
    REPRO_RETURN_IF_ERROR(
        repro::write_file(tree_path(iteration), bytes)
            .with_context("saving flat merkle metadata"));
  } else {
    const std::vector<std::uint8_t> bytes =
        merkle::flat_serialize_delta(tree_delta);
    sidecar_bytes = bytes.size();
    REPRO_RETURN_IF_ERROR(
        repro::write_file(tree_path(iteration), bytes)
            .with_context("saving differential merkle sidecar"));
  }

  // Content-addressed accounting: anchors reference every node, deltas only
  // the digests they introduce — refcount hits are exactly the dedup.
  if (is_anchor || !have_tree_delta) {
    node_store_.insert_all(effective_tree_.nodes());
  } else {
    for (const merkle::DeltaNode& node : tree_delta.nodes) {
      node_store_.insert(node.digest);
    }
  }

  stats_.captures += 1;
  stats_.raw_bytes += data.size();
  stats_.stored_bytes += file.size();
  stats_.metadata_bytes += sidecar_bytes;
  stats_.metadata_full_bytes += full_sidecar_bytes(effective_tree_);
  stats_.chunks_total += effective_tree_.num_chunks();
  stats_.chunks_stored += header.chunk_count;

  iterations_.push_back(iteration);
  if (is_anchor) {
    anchors_.push_back(iteration);
    appends_since_anchor_ = 1;
  } else {
    ++appends_since_anchor_;
  }
  return repro::Status::ok();
}

repro::Result<std::vector<std::uint8_t>> DeltaStore::reconstruct(
    std::uint64_t iteration) const {
  const auto end = std::find(iterations_.begin(), iterations_.end(), iteration);
  if (end == iterations_.end()) {
    return repro::not_found("iteration " + std::to_string(iteration) +
                            " not in delta store");
  }
  // Replay from the nearest anchor at or before the target: at most
  // anchor_interval files instead of the whole history.
  auto start = iterations_.begin();
  const auto anchor = std::upper_bound(anchors_.begin(), anchors_.end(),
                                       iteration);
  if (anchor != anchors_.begin()) {
    start = std::find(iterations_.begin(), iterations_.end(),
                      *std::prev(anchor));
  }
  std::vector<std::uint8_t> data;
  for (auto it = start; it <= end; ++it) {
    const bool is_full =
        std::binary_search(anchors_.begin(), anchors_.end(), *it);
    REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> file,
                           repro::read_file(data_path(*it, is_full)));
    REPRO_RETURN_IF_ERROR(apply_delta(file, data, nullptr));
  }
  return data;
}

repro::Result<merkle::MerkleTree> DeltaStore::tree(
    std::uint64_t iteration) const {
  return merkle::resolve_delta_chain(tree_path(iteration));
}

repro::Result<merkle::TreeDelta> DeltaStore::tree_delta(
    std::uint64_t iteration) const {
  REPRO_ASSIGN_OR_RETURN(merkle::MappedBundle bundle,
                         merkle::MappedBundle::open(tree_path(iteration)));
  if (!bundle.view().has_delta()) {
    return repro::not_found("sidecar of iteration " +
                            std::to_string(iteration) +
                            " carries no differential section");
  }
  return bundle.view().delta();
}

repro::Result<std::vector<std::uint64_t>> DeltaStore::changed_chunks(
    std::uint64_t iteration) const {
  if (!iterations_.empty() && iteration == iterations_.front()) {
    // The base capture changes every chunk by definition.
    std::vector<std::uint64_t> all(effective_tree_.num_chunks());
    for (std::uint64_t chunk = 0; chunk < all.size(); ++chunk) {
      all[chunk] = chunk;
    }
    return all;
  }
  REPRO_ASSIGN_OR_RETURN(const merkle::TreeDelta delta,
                         tree_delta(iteration));
  return delta.changed_chunks();
}

repro::Result<DeltaStore> DeltaStore::load(std::filesystem::path root,
                                           std::string run_id,
                                           std::uint32_t rank,
                                           DeltaStoreOptions options) {
  REPRO_ASSIGN_OR_RETURN(DeltaStore store,
                         open(std::move(root), std::move(run_id), rank,
                              std::move(options)));
  // One directory scan collects tree sidecars, data files, and stray
  // mid-publish temp files (crash between temp write and rename).
  std::error_code ec;
  std::vector<std::uint64_t> tree_iters;
  std::map<std::uint64_t, bool> data_iters;  // iteration -> is_base
  const auto parse_iter = [](std::string_view name, std::size_t prefix,
                             std::size_t suffix,
                             std::uint64_t* out) -> bool {
    const char* begin = name.data() + prefix;
    const char* end = name.data() + name.size() - suffix;
    if (begin >= end) return false;
    const auto [ptr, parse_ec] = std::from_chars(begin, end, *out);
    return parse_ec == std::errc{} && ptr == end;
  };
  for (const auto& entry :
       std::filesystem::directory_iterator(store.dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp-") != std::string::npos) {
      // Torn publish from a crash mid-write: the rename never happened, so
      // the content is unreferenced. Remove it.
      REPRO_LOG_WARN << "delta store: removing stray temp publish " << name;
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
      continue;
    }
    std::uint64_t iteration = 0;
    if (name.starts_with("iter") && name.ends_with(".rmrk")) {
      if (parse_iter(name, 4, 5, &iteration)) tree_iters.push_back(iteration);
    } else if (name.starts_with("base.iter") && name.ends_with(".rdlt")) {
      if (parse_iter(name, 9, 5, &iteration)) data_iters[iteration] = true;
    } else if (name.starts_with("delta.iter") && name.ends_with(".rdlt")) {
      if (parse_iter(name, 10, 5, &iteration)) data_iters[iteration] = false;
    }
  }
  if (ec) {
    return repro::io_error("scanning " + store.dir_.string() + ": " +
                           ec.message());
  }
  std::sort(tree_iters.begin(), tree_iters.end());

  // Trust an iteration only when its sidecar AND data file both exist and
  // the data header matches the filename. Deltas replay in sequence, so the
  // history is truncated at the first broken link rather than failing late
  // inside reconstruct().
  std::vector<std::uint64_t> iterations;
  std::vector<std::uint64_t> anchors;
  for (const std::uint64_t iteration : tree_iters) {
    const auto data_it = data_iters.find(iteration);
    if (data_it == data_iters.end()) {
      REPRO_LOG_WARN << "delta store: iteration " << iteration
                     << " has a tree sidecar but no data file; truncating "
                        "history here";
      break;
    }
    const bool is_full = data_it->second;
    const auto header =
        peek_delta_header(store.data_path(iteration, is_full));
    if (!header.is_ok()) {
      REPRO_LOG_WARN << "delta store: iteration " << iteration
                     << " data file unreadable ("
                     << header.status().message()
                     << "); truncating history here";
      break;
    }
    if (header.value().iteration != iteration ||
        header.value().is_base != is_full) {
      REPRO_LOG_WARN << "delta store: iteration " << iteration
                     << " data header does not match its filename; "
                        "truncating history here";
      break;
    }
    if (iterations.empty() && !is_full) {
      REPRO_LOG_WARN << "delta store: first iteration " << iteration
                     << " is a delta with no base; truncating history here";
      break;
    }
    iterations.push_back(iteration);
    if (is_full) anchors.push_back(iteration);
    data_iters.erase(data_it);
  }
  // Whatever data files remain have no trusted sidecar — the crash-orphan
  // case (died between the data publish and the sidecar publish). They are
  // unreachable through the API; warn so an operator can reclaim them.
  for (const auto& [iteration, is_full] : data_iters) {
    if (!iterations.empty() && iteration <= iterations.back()) continue;
    REPRO_LOG_WARN << "delta store: orphaned data file for iteration "
                   << iteration << " (no tree sidecar); skipping";
  }
  store.iterations_ = std::move(iterations);
  store.anchors_ = std::move(anchors);
  // Headers can match while record payloads are corrupt (bit rot, hostile
  // edits); the only proof an iteration is usable is a clean replay. Trim
  // back to the longest prefix whose tail replays instead of failing load.
  while (!store.iterations_.empty()) {
    const std::uint64_t last = store.iterations_.back();
    auto tree = store.tree(last);
    if (tree.is_ok()) {
      auto data = store.reconstruct(last);
      if (data.is_ok()) {
        store.effective_tree_ = std::move(tree).value();
        store.effective_ = std::move(data).value();
        break;
      }
      REPRO_LOG_WARN << "delta store: iteration " << last
                     << " does not replay cleanly ("
                     << data.status().message()
                     << "); truncating history here";
    } else {
      REPRO_LOG_WARN << "delta store: iteration " << last
                     << " sidecar does not resolve ("
                     << tree.status().message()
                     << "); truncating history here";
    }
    if (!store.anchors_.empty() && store.anchors_.back() == last) {
      store.anchors_.pop_back();
    }
    store.iterations_.pop_back();
  }
  if (!store.iterations_.empty()) {
    // Distance from the last anchor primes the anchor cadence for appends.
    store.appends_since_anchor_ = 1;
    for (auto it = store.iterations_.rbegin();
         it != store.iterations_.rend() && *it != store.anchors_.back();
         ++it) {
      ++store.appends_since_anchor_;
    }
  }
  return store;
}

repro::Result<std::vector<TimelineEntry>> incremental_timeline(
    const DeltaStore& a, const DeltaStore& b, TimelineStats* stats) {
  // Iterations both stores hold, ascending.
  std::vector<std::uint64_t> common;
  std::set_intersection(a.iterations().begin(), a.iterations().end(),
                        b.iterations().begin(), b.iterations().end(),
                        std::back_inserter(common));
  TimelineStats shape;
  std::vector<TimelineEntry> timeline;
  if (common.empty()) {
    if (stats != nullptr) *stats = shape;
    return timeline;
  }

  // Full compare once, at the first common iteration; after that only the
  // chunks whose digests moved on either side get re-examined.
  REPRO_ASSIGN_OR_RETURN(merkle::MerkleTree tree_a, a.tree(common.front()));
  REPRO_ASSIGN_OR_RETURN(merkle::MerkleTree tree_b, b.tree(common.front()));
  merkle::TreeCompareStats compare_stats;
  REPRO_ASSIGN_OR_RETURN(
      const std::vector<std::uint64_t> initial,
      merkle::compare_trees(tree_a, tree_b, {}, &compare_stats));
  std::unordered_set<std::uint64_t> diverged(initial.begin(), initial.end());
  // The incremental walk pays the two full tree loads once, at the first
  // common iteration; a non-incremental timeline pays them (plus the
  // compare) at *every* iteration — that is the O(iterations × tree)
  // baseline full_visit_equiv records.
  const std::uint64_t full_visits_once = tree_a.nodes().size() +
                                         tree_b.nodes().size() +
                                         compare_stats.nodes_visited;
  shape.node_visits += full_visits_once;
  shape.full_visit_equiv += full_visits_once;
  shape.iterations = common.size();
  timeline.push_back({common.front(), diverged.size()});

  // Advance both stores to each next common iteration, folding every
  // intermediate per-iteration RMFD into the rolling tree and the touched
  // chunk set.
  const auto advance =
      [&shape](const DeltaStore& store, merkle::MerkleTree& tree,
               std::uint64_t from, std::uint64_t to,
               std::unordered_set<std::uint64_t>& touched) -> repro::Status {
    const auto& iters = store.iterations();
    auto it = std::upper_bound(iters.begin(), iters.end(), from);
    for (; it != iters.end() && *it <= to; ++it) {
      REPRO_ASSIGN_OR_RETURN(const merkle::TreeDelta delta,
                             store.tree_delta(*it));
      shape.node_visits += delta.nodes.size();
      for (const std::uint64_t chunk : delta.changed_chunks()) {
        touched.insert(chunk);
      }
      REPRO_ASSIGN_OR_RETURN(tree, merkle::apply_tree_delta(tree, delta));
    }
    return repro::Status::ok();
  };

  for (std::size_t i = 1; i < common.size(); ++i) {
    std::unordered_set<std::uint64_t> touched;
    REPRO_RETURN_IF_ERROR(
        advance(a, tree_a, common[i - 1], common[i], touched));
    REPRO_RETURN_IF_ERROR(
        advance(b, tree_b, common[i - 1], common[i], touched));
    for (const std::uint64_t chunk : touched) {
      if (chunk >= tree_a.num_chunks() || chunk >= tree_b.num_chunks()) {
        continue;
      }
      ++shape.node_visits;
      if (tree_a.leaf(chunk) == tree_b.leaf(chunk)) {
        diverged.erase(chunk);
      } else {
        diverged.insert(chunk);
      }
    }
    shape.full_visit_equiv += full_visits_once;
    timeline.push_back({common[i], diverged.size()});
  }
  if (stats != nullptr) *stats = shape;
  return timeline;
}

}  // namespace repro::ckpt
