#include "ckpt/history.hpp"

#include <algorithm>
#include <charconv>

namespace repro::ckpt {

namespace {

/// Parse "<prefix><number>" -> number.
bool parse_tagged(std::string_view text, std::string_view prefix,
                  std::uint64_t* out) {
  if (text.size() <= prefix.size() || !text.starts_with(prefix)) return false;
  const auto* begin = text.data() + prefix.size();
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

CheckpointRef HistoryCatalog::ref(const std::string& run_id,
                                  std::uint64_t iteration,
                                  std::uint32_t rank) const {
  CheckpointRef out;
  out.run_id = run_id;
  out.iteration = iteration;
  out.rank = rank;
  const auto dir = root_ / run_id / ("iter" + std::to_string(iteration));
  out.checkpoint_path = dir / ("rank" + std::to_string(rank) + ".ckpt");
  out.metadata_path = dir / ("rank" + std::to_string(rank) + ".rmrk");
  return out;
}

repro::Result<CheckpointRef> HistoryCatalog::make_ref(
    const std::string& run_id, std::uint64_t iteration,
    std::uint32_t rank) const {
  CheckpointRef out = ref(run_id, iteration, rank);
  std::error_code ec;
  std::filesystem::create_directories(out.checkpoint_path.parent_path(), ec);
  if (ec) {
    return repro::io_error("mkdir " +
                           out.checkpoint_path.parent_path().string() + ": " +
                           ec.message());
  }
  return out;
}

repro::Result<std::vector<std::string>> HistoryCatalog::runs() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root_, ec)) {
    if (entry.is_directory()) out.push_back(entry.path().filename().string());
  }
  if (ec) {
    return repro::io_error("scanning " + root_.string() + ": " + ec.message());
  }
  std::sort(out.begin(), out.end());
  return out;
}

repro::Result<std::vector<CheckpointRef>> HistoryCatalog::checkpoints(
    const std::string& run_id) const {
  const auto run_dir = root_ / run_id;
  if (!std::filesystem::is_directory(run_dir)) {
    return repro::not_found("no run directory: " + run_dir.string());
  }
  std::vector<CheckpointRef> out;
  std::error_code ec;
  for (const auto& iter_entry :
       std::filesystem::directory_iterator(run_dir, ec)) {
    if (!iter_entry.is_directory()) continue;
    std::uint64_t iteration = 0;
    if (!parse_tagged(iter_entry.path().filename().string(), "iter",
                      &iteration)) {
      continue;
    }
    for (const auto& rank_entry :
         std::filesystem::directory_iterator(iter_entry.path())) {
      const auto filename = rank_entry.path().filename().string();
      if (!filename.ends_with(".ckpt")) continue;
      std::uint64_t rank = 0;
      if (!parse_tagged(filename.substr(0, filename.size() - 5), "rank",
                        &rank)) {
        continue;
      }
      out.push_back(ref(run_id, iteration, static_cast<std::uint32_t>(rank)));
    }
  }
  if (ec) {
    return repro::io_error("scanning " + run_dir.string() + ": " +
                           ec.message());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::tie(a.iteration, a.rank) < std::tie(b.iteration, b.rank);
  });
  return out;
}

repro::Result<std::vector<CheckpointPair>> HistoryCatalog::pair_runs(
    const std::string& run_a, const std::string& run_b) const {
  REPRO_ASSIGN_OR_RETURN(const std::vector<CheckpointRef> list_a,
                         checkpoints(run_a));
  REPRO_ASSIGN_OR_RETURN(const std::vector<CheckpointRef> list_b,
                         checkpoints(run_b));
  if (list_a.size() != list_b.size()) {
    return repro::failed_precondition(
        "histories differ in checkpoint count (" +
        std::to_string(list_a.size()) + " vs " + std::to_string(list_b.size()) +
        ")");
  }
  std::vector<CheckpointPair> pairs;
  pairs.reserve(list_a.size());
  for (std::size_t i = 0; i < list_a.size(); ++i) {
    if (list_a[i].iteration != list_b[i].iteration ||
        list_a[i].rank != list_b[i].rank) {
      return repro::failed_precondition(
          "histories are not aligned at entry " + std::to_string(i));
    }
    pairs.push_back({list_a[i], list_b[i]});
  }
  return pairs;
}

repro::Result<PairingReport> HistoryCatalog::pair_runs_lenient(
    const std::string& run_a, const std::string& run_b) const {
  REPRO_ASSIGN_OR_RETURN(const std::vector<CheckpointRef> list_a,
                         checkpoints(run_a));
  REPRO_ASSIGN_OR_RETURN(const std::vector<CheckpointRef> list_b,
                         checkpoints(run_b));

  // Both lists are sorted by (iteration, rank): a single merge pass splits
  // them into matched pairs and one-sided leftovers.
  PairingReport report;
  std::size_t ia = 0;
  std::size_t ib = 0;
  const auto key = [](const CheckpointRef& ref) {
    return std::make_pair(ref.iteration, ref.rank);
  };
  while (ia < list_a.size() && ib < list_b.size()) {
    if (key(list_a[ia]) == key(list_b[ib])) {
      report.pairs.push_back({list_a[ia], list_b[ib]});
      ++ia;
      ++ib;
    } else if (key(list_a[ia]) < key(list_b[ib])) {
      report.only_in_a.push_back(list_a[ia++]);
    } else {
      report.only_in_b.push_back(list_b[ib++]);
    }
  }
  for (; ia < list_a.size(); ++ia) report.only_in_a.push_back(list_a[ia]);
  for (; ib < list_b.size(); ++ib) report.only_in_b.push_back(list_b[ib]);
  return report;
}

}  // namespace repro::ckpt
