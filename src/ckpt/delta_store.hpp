// Delta-compacted checkpoint history (the paper's second future-work item,
// Section 5: "compact the checkpoints online to reduce the I/O overhead and
// storage costs for the checkpoint history").
//
// The Merkle trees built at capture time tell us, for free, which chunks
// changed since the previous capture of the same rank. The DeltaStore
// exploits that: the first capture is stored in full; every later capture
// stores only the chunks whose error-bounded digest differs from the
// previous iteration's, plus the (tiny) tree. Reconstructing iteration j
// replays deltas over the base — and because the *unstored* chunks were
// proven unchanged within the error bound, the reconstruction is exact for
// stored chunks and within-bound for elided ones. The store diffs each new
// capture against the *effective* (reconstructable) state, not the previous
// raw capture, so elision error never accumulates beyond one error bound no
// matter how long the history grows. For bitwise-exact reconstruction,
// capture with ValueKind::kBytes (bitwise hashing).
//
// Layout under the store root:
//   <run>/rank<i>/base.iter<j0>.rdlt       full snapshot (first capture)
//   <run>/rank<i>/delta.iter<j>.rdlt       changed chunks vs previous
//   <run>/rank<i>/iter<j>.rmrk             tree of iteration j
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "merkle/tree.hpp"
#include "par/exec.hpp"

namespace repro::ckpt {

struct DeltaStoreOptions {
  merkle::TreeParams tree;
  par::Exec exec = par::Exec::parallel();
};

struct DeltaStoreStats {
  std::uint64_t captures = 0;
  std::uint64_t raw_bytes = 0;      ///< sum of full checkpoint sizes
  std::uint64_t stored_bytes = 0;   ///< bytes actually written (data files)
  std::uint64_t metadata_bytes = 0; ///< tree sidecars
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_stored = 0;

  [[nodiscard]] double compaction_ratio() const noexcept {
    return stored_bytes > 0
               ? static_cast<double>(raw_bytes) /
                     static_cast<double>(stored_bytes)
               : 0.0;
  }
};

/// One rank's delta-compacted capture stream within a run.
class DeltaStore {
 public:
  /// Opens (creating directories) the stream for (run_id, rank) under
  /// `root`. Appending and reconstruction can be interleaved freely.
  static repro::Result<DeltaStore> open(std::filesystem::path root,
                                        std::string run_id,
                                        std::uint32_t rank,
                                        DeltaStoreOptions options);

  /// Append the checkpoint of `iteration` (strictly increasing). Stores the
  /// full data on the first call, changed chunks only afterwards.
  repro::Status append(std::uint64_t iteration,
                       std::span<const std::uint8_t> data);

  /// Reconstruct the full data of a previously appended iteration.
  [[nodiscard]] repro::Result<std::vector<std::uint8_t>> reconstruct(
      std::uint64_t iteration) const;

  /// Load the tree stored for an iteration: the tree of the *effective*
  /// state reconstruct() returns (per-chunk within one error bound of the
  /// captured data). Usable directly with merkle::compare_trees —
  /// cross-run comparison needs no reconstruction.
  [[nodiscard]] repro::Result<merkle::MerkleTree> tree(
      std::uint64_t iteration) const;

  /// Iterations appended so far, ascending.
  [[nodiscard]] const std::vector<std::uint64_t>& iterations() const noexcept {
    return iterations_;
  }

  [[nodiscard]] const DeltaStoreStats& stats() const noexcept {
    return stats_;
  }

  /// Re-open an existing stream from disk (scans the directory).
  static repro::Result<DeltaStore> load(std::filesystem::path root,
                                        std::string run_id,
                                        std::uint32_t rank,
                                        DeltaStoreOptions options);

 private:
  DeltaStore(std::filesystem::path dir, DeltaStoreOptions options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  [[nodiscard]] std::filesystem::path data_path(std::uint64_t iteration,
                                                bool base) const;
  [[nodiscard]] std::filesystem::path tree_path(
      std::uint64_t iteration) const;

  std::filesystem::path dir_;
  DeltaStoreOptions options_;
  std::vector<std::uint64_t> iterations_;
  /// The reconstructable state after the latest append (diff baseline) and
  /// its tree. Kept in memory so every delta is computed against what a
  /// reader will actually see.
  std::vector<std::uint8_t> effective_;
  merkle::MerkleTree effective_tree_;
  DeltaStoreStats stats_;
};

}  // namespace repro::ckpt
