// Delta-compacted checkpoint history (the paper's second future-work item,
// Section 5: "compact the checkpoints online to reduce the I/O overhead and
// storage costs for the checkpoint history").
//
// The Merkle trees built at capture time tell us, for free, which chunks
// changed since the previous capture of the same rank. The DeltaStore
// exploits that: the first capture is stored in full; every later capture
// stores only the chunks whose error-bounded digest differs from the
// previous iteration's, plus the (tiny) tree. Reconstructing iteration j
// replays deltas over the nearest anchor — and because the *unstored*
// chunks were proven unchanged within the error bound, the reconstruction
// is exact for stored chunks and within-bound for elided ones. The store
// diffs each new capture against the *effective* (reconstructable) state,
// not the previous raw capture, so elision error never accumulates beyond
// one error bound no matter how long the history grows. For bitwise-exact
// reconstruction, capture with ValueKind::kBytes (bitwise hashing).
//
// Metadata is deduplicated the same way (ROADMAP item 2): between anchors,
// the per-iteration sidecar is *differential* — an RMFD section carrying
// only the tree nodes whose digests changed (merkle/nodestore.hpp) — so
// metadata bytes grow with divergence, not with iterations. Every
// `anchor_interval`-th capture writes a full snapshot of both data and tree
// (the tree sidecar also carries its RMFD vs the previous iteration, so
// incremental consumers never lose the per-step diff), bounding
// reconstruct()/tree() replay to at most `anchor_interval` deltas.
//
// Layout under the store root:
//   <run>/rank<i>/base.iter<j>.rdlt        full snapshot (first capture and
//                                          every anchor)
//   <run>/rank<i>/delta.iter<j>.rdlt       changed chunks vs previous
//   <run>/rank<i>/iter<j>.rmrk             tree sidecar of iteration j:
//                                          full RMF2 at anchors, RMFD-only
//                                          (differential) otherwise
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "merkle/nodestore.hpp"
#include "merkle/tree.hpp"
#include "par/exec.hpp"

namespace repro::ckpt {

struct DeltaStoreOptions {
  merkle::TreeParams tree;
  par::Exec exec = par::Exec::parallel();
  /// Every K-th capture is a full anchor (data + tree), bounding delta
  /// replay chains to K. 0 disables anchoring beyond the base capture.
  std::uint64_t anchor_interval = 16;
  /// When false, every sidecar is a full tree (pre-dedup behavior); the
  /// bench uses this to measure the differential savings against the
  /// full-per-iteration baseline.
  bool differential_metadata = true;
};

struct DeltaStoreStats {
  std::uint64_t captures = 0;
  std::uint64_t raw_bytes = 0;      ///< sum of full checkpoint sizes
  std::uint64_t stored_bytes = 0;   ///< bytes actually written (data files)
  std::uint64_t metadata_bytes = 0; ///< sidecar bytes written (deduplicated)
  /// What full-per-iteration flat sidecars would have cost — the dedup
  /// denominator of the ≥3x gate in bench_metadata.
  std::uint64_t metadata_full_bytes = 0;
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_stored = 0;

  [[nodiscard]] double compaction_ratio() const noexcept {
    // An empty store has compacted nothing: ratio 1.0, not 0 (a bare
    // stats read before the first append must not print "0x compaction").
    return stored_bytes > 0
               ? static_cast<double>(raw_bytes) /
                     static_cast<double>(stored_bytes)
               : 1.0;
  }
  [[nodiscard]] double metadata_savings() const noexcept {
    return metadata_bytes > 0
               ? static_cast<double>(metadata_full_bytes) /
                     static_cast<double>(metadata_bytes)
               : 1.0;
  }
};

/// One rank's delta-compacted capture stream within a run.
class DeltaStore {
 public:
  /// Opens (creating directories) the stream for (run_id, rank) under
  /// `root`. Appending and reconstruction can be interleaved freely.
  static repro::Result<DeltaStore> open(std::filesystem::path root,
                                        std::string run_id,
                                        std::uint32_t rank,
                                        DeltaStoreOptions options);

  /// Append the checkpoint of `iteration` (strictly increasing). Stores the
  /// full data on the first call and at every anchor, changed chunks only
  /// otherwise.
  repro::Status append(std::uint64_t iteration,
                       std::span<const std::uint8_t> data);

  /// Reconstruct the full data of a previously appended iteration. Replays
  /// from the nearest anchor at or before `iteration` — at most
  /// `anchor_interval` delta files.
  [[nodiscard]] repro::Result<std::vector<std::uint8_t>> reconstruct(
      std::uint64_t iteration) const;

  /// Load the tree stored for an iteration: the tree of the *effective*
  /// state reconstruct() returns (per-chunk within one error bound of the
  /// captured data). Differential sidecars are resolved against their
  /// anchor transparently. Usable directly with merkle::compare_trees —
  /// cross-run comparison needs no reconstruction.
  [[nodiscard]] repro::Result<merkle::MerkleTree> tree(
      std::uint64_t iteration) const;

  /// The RMFD delta the sidecar of `iteration` carries (vs the previous
  /// appended iteration). Errors for the base capture, which has none.
  [[nodiscard]] repro::Result<merkle::TreeDelta> tree_delta(
      std::uint64_t iteration) const;

  /// Chunks whose digests changed at `iteration` relative to the previous
  /// appended iteration (every chunk for the base capture).
  [[nodiscard]] repro::Result<std::vector<std::uint64_t>> changed_chunks(
      std::uint64_t iteration) const;

  /// Iterations appended so far, ascending.
  [[nodiscard]] const std::vector<std::uint64_t>& iterations() const noexcept {
    return iterations_;
  }

  /// Iterations stored as full anchors (always includes the base capture),
  /// ascending.
  [[nodiscard]] const std::vector<std::uint64_t>& anchors() const noexcept {
    return anchors_;
  }

  [[nodiscard]] const DeltaStoreStats& stats() const noexcept {
    return stats_;
  }

  /// Content-addressed refcounts over every node digest referenced by the
  /// appended sidecars — the exact dedup accounting behind
  /// stats().metadata_bytes.
  [[nodiscard]] const merkle::NodeStore& node_store() const noexcept {
    return node_store_;
  }

  /// Re-open an existing stream from disk (scans the directory). Orphaned
  /// data files (crash between the data and sidecar publishes) are skipped
  /// with a warning, stray mid-publish temp files are removed, and each
  /// listed iteration's data file is verified to exist with a matching
  /// header before it is trusted; the history is truncated at the first
  /// broken link so reconstruct() never fails late on a torn chain.
  static repro::Result<DeltaStore> load(std::filesystem::path root,
                                        std::string run_id,
                                        std::uint32_t rank,
                                        DeltaStoreOptions options);

 private:
  DeltaStore(std::filesystem::path dir, DeltaStoreOptions options)
      : dir_(std::move(dir)), options_(std::move(options)) {}

  [[nodiscard]] std::filesystem::path data_path(std::uint64_t iteration,
                                                bool base) const;
  [[nodiscard]] std::filesystem::path tree_path(
      std::uint64_t iteration) const;

  std::filesystem::path dir_;
  DeltaStoreOptions options_;
  std::vector<std::uint64_t> iterations_;
  std::vector<std::uint64_t> anchors_;
  std::uint64_t appends_since_anchor_ = 0;
  /// The reconstructable state after the latest append (diff baseline) and
  /// its tree. Kept in memory so every delta is computed against what a
  /// reader will actually see.
  std::vector<std::uint8_t> effective_;
  merkle::MerkleTree effective_tree_;
  merkle::NodeStore node_store_;
  DeltaStoreStats stats_;
};

/// One timeline step: how many chunks diverge between the two runs at this
/// iteration.
struct TimelineEntry {
  std::uint64_t iteration = 0;
  std::uint64_t diverged_chunks = 0;
};

struct TimelineStats {
  std::uint64_t iterations = 0;   ///< timeline entries produced
  std::uint64_t node_visits = 0;  ///< tree nodes actually examined
  /// What a full per-iteration compare would have examined — the
  /// O(iterations × tree) baseline the incremental walk avoids.
  std::uint64_t full_visit_equiv = 0;
};

/// Divergence timeline across the iterations both stores hold, computed
/// incrementally: one full tree compare at the first common iteration, then
/// only the subtrees whose root digests changed on either side (read from
/// the RMFD sidecars) — O(divergence) instead of O(iterations × tree).
repro::Result<std::vector<TimelineEntry>> incremental_timeline(
    const DeltaStore& a, const DeltaStore& b, TimelineStats* stats = nullptr);

}  // namespace repro::ckpt
