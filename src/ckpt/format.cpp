#include "ckpt/format.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/bytes.hpp"
#include "common/fs.hpp"

namespace repro::ckpt {

namespace {
constexpr std::uint32_t kMagic = 0x504B4352;  // "RCKP"
constexpr std::uint32_t kVersion = 1;
}  // namespace

const FieldInfo* CheckpointInfo::field_at(std::uint64_t offset) const noexcept {
  for (const auto& field : fields) {
    if (offset >= field.data_offset &&
        offset < field.data_offset + field.byte_size()) {
      return &field;
    }
  }
  return nullptr;
}

CheckpointWriter::CheckpointWriter(std::string application, std::string run_id,
                                   std::uint64_t iteration,
                                   std::uint32_t rank) {
  info_.application = std::move(application);
  info_.run_id = std::move(run_id);
  info_.iteration = iteration;
  info_.rank = rank;
}

repro::Status CheckpointWriter::add_field(std::string name,
                                          merkle::ValueKind kind,
                                          std::span<const std::uint8_t> bytes,
                                          std::uint64_t element_count) {
  for (const auto& field : info_.fields) {
    if (field.name == name) {
      return repro::already_exists("duplicate field: " + name);
    }
  }
  FieldInfo field;
  field.name = std::move(name);
  field.kind = kind;
  field.element_count = element_count;
  field.data_offset = data_.size();
  info_.fields.push_back(std::move(field));
  data_.insert(data_.end(), bytes.begin(), bytes.end());
  return repro::Status::ok();
}

repro::Status CheckpointWriter::add_field_f32(std::string name,
                                              std::span<const float> values) {
  return add_field(std::move(name), merkle::ValueKind::kF32,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(values.data()),
                       values.size_bytes()),
                   values.size());
}

repro::Status CheckpointWriter::add_field_f64(std::string name,
                                              std::span<const double> values) {
  return add_field(std::move(name), merkle::ValueKind::kF64,
                   std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(values.data()),
                       values.size_bytes()),
                   values.size());
}

repro::Status CheckpointWriter::add_field_bytes(
    std::string name, std::span<const std::uint8_t> bytes) {
  return add_field(std::move(name), merkle::ValueKind::kBytes, bytes,
                   bytes.size());
}

repro::Result<std::vector<std::uint8_t>> encode_header(
    const CheckpointInfo& info) {
  std::vector<std::uint8_t> header;
  header.reserve(kHeaderBytes);
  ByteWriter writer(header);
  writer.put_u32(kMagic);
  writer.put_u32(kVersion);
  writer.put_string(info.application);
  writer.put_string(info.run_id);
  writer.put_u64(info.iteration);
  writer.put_u32(info.rank);
  writer.put_u32(static_cast<std::uint32_t>(info.fields.size()));
  for (const auto& field : info.fields) {
    writer.put_string(field.name);
    writer.put_u8(static_cast<std::uint8_t>(field.kind));
    writer.put_u64(field.element_count);
    writer.put_u64(field.data_offset);
  }
  if (header.size() > kHeaderBytes) {
    return repro::invalid_argument(
        "checkpoint header exceeds fixed header region (" +
        std::to_string(header.size()) + " > " + std::to_string(kHeaderBytes) +
        " bytes); fewer/shorter field names required");
  }
  header.resize(kHeaderBytes, 0);
  return header;
}

repro::Result<CheckpointInfo> decode_header(
    std::span<const std::uint8_t> header) {
  ByteReader reader(header);
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.get_u32());
  if (magic != kMagic) return repro::corrupt_data("bad checkpoint magic");
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t version, reader.get_u32());
  if (version != kVersion) {
    return repro::unsupported("unknown checkpoint version " +
                              std::to_string(version));
  }
  CheckpointInfo info;
  REPRO_ASSIGN_OR_RETURN(info.application, reader.get_string());
  REPRO_ASSIGN_OR_RETURN(info.run_id, reader.get_string());
  REPRO_ASSIGN_OR_RETURN(info.iteration, reader.get_u64());
  REPRO_ASSIGN_OR_RETURN(info.rank, reader.get_u32());
  REPRO_ASSIGN_OR_RETURN(const std::uint32_t field_count, reader.get_u32());
  std::uint64_t expected_offset = 0;
  for (std::uint32_t i = 0; i < field_count; ++i) {
    FieldInfo field;
    REPRO_ASSIGN_OR_RETURN(field.name, reader.get_string());
    REPRO_ASSIGN_OR_RETURN(const std::uint8_t kind, reader.get_u8());
    if (kind > static_cast<std::uint8_t>(merkle::ValueKind::kBytes)) {
      return repro::corrupt_data("bad field value kind");
    }
    field.kind = static_cast<merkle::ValueKind>(kind);
    REPRO_ASSIGN_OR_RETURN(field.element_count, reader.get_u64());
    REPRO_ASSIGN_OR_RETURN(field.data_offset, reader.get_u64());
    if (field.data_offset != expected_offset) {
      return repro::corrupt_data("field offsets not contiguous");
    }
    expected_offset += field.byte_size();
    info.fields.push_back(std::move(field));
  }
  return info;
}

repro::Status CheckpointWriter::write(
    const std::filesystem::path& path) const {
  REPRO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> file_bytes,
                         encode_header(info_));
  file_bytes.insert(file_bytes.end(), data_.begin(), data_.end());
  return repro::write_file(path, file_bytes)
      .with_context("writing checkpoint " + path.string());
}

repro::Result<CheckpointReader> CheckpointReader::open(
    const std::filesystem::path& path) {
  // Read just the fixed header region.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return repro::io_error_errno("open checkpoint: " + path.string(), errno);
  }
  std::vector<std::uint8_t> header(kHeaderBytes);
  std::size_t got = 0;
  repro::Status status;
  while (got < header.size()) {
    const ssize_t n = ::read(fd, header.data() + got, header.size() - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      status = repro::io_error_errno("read header: " + path.string(), errno);
      break;
    }
    if (n == 0) {
      status = repro::corrupt_data("checkpoint shorter than header: " +
                                   path.string());
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (!status.is_ok()) return status;

  CheckpointReader reader;
  reader.path_ = path;
  REPRO_ASSIGN_OR_RETURN(reader.info_, decode_header(header));

  REPRO_ASSIGN_OR_RETURN(const std::uint64_t size, repro::file_size(path));
  if (size != kHeaderBytes + reader.info_.data_bytes()) {
    return repro::corrupt_data("checkpoint size mismatch: " + path.string());
  }
  return reader;
}

repro::Result<std::vector<std::uint8_t>> CheckpointReader::read_data() const {
  REPRO_ASSIGN_OR_RETURN(std::vector<std::uint8_t> all,
                         repro::read_file(path_));
  if (all.size() < kHeaderBytes) {
    return repro::corrupt_data("checkpoint truncated: " + path_.string());
  }
  return std::vector<std::uint8_t>(all.begin() + kHeaderBytes, all.end());
}

repro::Result<std::vector<std::uint8_t>> CheckpointReader::read_field(
    std::string_view name) const {
  const FieldInfo* found = nullptr;
  for (const auto& field : info_.fields) {
    if (field.name == name) {
      found = &field;
      break;
    }
  }
  if (found == nullptr) {
    return repro::not_found("no field '" + std::string{name} + "' in " +
                            path_.string());
  }
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    return repro::io_error_errno("open checkpoint: " + path_.string(), errno);
  }
  std::vector<std::uint8_t> data(found->byte_size());
  std::size_t got = 0;
  repro::Status status;
  while (got < data.size()) {
    const ssize_t n = ::pread(
        fd, data.data() + got, data.size() - got,
        static_cast<off_t>(kHeaderBytes + found->data_offset + got));
    if (n < 0) {
      if (errno == EINTR) continue;
      status = repro::io_error_errno("read field: " + path_.string(), errno);
      break;
    }
    if (n == 0) {
      status = repro::corrupt_data("EOF reading field from " + path_.string());
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  if (!status.is_ok()) return status;
  return data;
}

}  // namespace repro::ckpt
