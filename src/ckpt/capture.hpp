// Asynchronous multi-level checkpoint capture (VELOC-lite).
//
// The paper captures intermediate results with VELOC: the application writes
// its checkpoint to fast node-local storage in the foreground and a
// background thread flushes it to the shared PFS while the simulation
// continues. We reproduce that pipeline and extend it with the paper's
// contribution: the Merkle metadata is built at capture time — while the
// checkpoint bytes are still in memory — so the comparison stage later needs
// no extra pass over the bulk data.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

#include "ckpt/format.hpp"
#include "ckpt/history.hpp"
#include "common/status.hpp"
#include "common/timer.hpp"
#include "merkle/flat.hpp"
#include "merkle/tree.hpp"
#include "par/exec.hpp"
#include "par/thread_pool.hpp"

namespace repro::ckpt {

struct CaptureOptions {
  /// Parameters of the capture-time Merkle metadata.
  merkle::TreeParams tree;
  /// Build metadata at capture time (the paper's mode). Off = bulk-only
  /// capture; trees must then be built offline (repro-cli tree).
  bool build_metadata = true;
  /// Sidecar encoding for the published metadata. Flat v2 is the default
  /// (mmap-able, zero-copy reads); legacy v1 remains writable for compat
  /// fixtures and downgrades. Readers accept both either way.
  merkle::SidecarWriteFormat sidecar_format =
      merkle::SidecarWriteFormat::kFlatV2;
  par::Exec exec = par::Exec::parallel();
};

struct CaptureStats {
  std::uint64_t checkpoints_captured = 0;
  std::uint64_t bytes_captured = 0;
  std::uint64_t metadata_bytes = 0;
  double foreground_seconds = 0;  ///< time the application was blocked
  double flush_seconds = 0;       ///< background local -> PFS copy time
};

/// Two-level capture engine: local_dir plays NVMe, the catalog root plays
/// the PFS. One engine per rank (VELOC is per-process too).
class CaptureEngine {
 public:
  CaptureEngine(std::filesystem::path local_dir, HistoryCatalog catalog,
                CaptureOptions options);
  ~CaptureEngine();

  CaptureEngine(const CaptureEngine&) = delete;
  CaptureEngine& operator=(const CaptureEngine&) = delete;

  /// Foreground part of a capture: write the checkpoint to local storage,
  /// build the Merkle tree from the in-memory bytes, then enqueue the PFS
  /// flush and return. Blocks only for the local write + tree build.
  repro::Status capture(const CheckpointWriter& writer);

  /// Block until every enqueued flush has landed on the PFS.
  repro::Status wait_all();

  /// Snapshot of the counters. By value: the foreground thread and the
  /// background flusher both update stats_, so a reference would race.
  [[nodiscard]] CaptureStats stats() const;
  [[nodiscard]] const HistoryCatalog& catalog() const noexcept {
    return catalog_;
  }

 private:
  std::filesystem::path local_dir_;
  HistoryCatalog catalog_;
  CaptureOptions options_;
  par::ThreadPool flusher_{1};  ///< background flush thread (one, ordered)
  mutable std::mutex mu_;       ///< guards stats_ and flush_status_
  repro::Status flush_status_;
  CaptureStats stats_;
};

}  // namespace repro::ckpt
