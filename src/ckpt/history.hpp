// Checkpoint-history catalog.
//
// The problem formulation compares histories A_i^j and B_i^j: N ranks × M
// capture iterations per run, stored on the shared "PFS" directory as
//
//   <root>/<run_id>/iter<j>/rank<i>.ckpt       checkpoint bulk data
//   <root>/<run_id>/iter<j>/rank<i>.rmrk       Merkle metadata sidecar
//
// The catalog scans this layout, pairs up the two runs' files, and hands the
// comparison runtime an ordered worklist.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace repro::ckpt {

struct CheckpointRef {
  std::string run_id;
  std::uint64_t iteration = 0;
  std::uint32_t rank = 0;
  std::filesystem::path checkpoint_path;
  std::filesystem::path metadata_path;  ///< may not exist (no tree captured)

  [[nodiscard]] bool has_metadata() const {
    return std::filesystem::exists(metadata_path);
  }
};

/// One unit of comparison work: the same (iteration, rank) from two runs.
struct CheckpointPair {
  CheckpointRef run_a;
  CheckpointRef run_b;
};

/// Lenient pairing outcome for ragged histories (crashed runs, partial
/// copies, differing capture cadences): the aligned pairs plus whatever
/// (iteration, rank) slots exist on only one side. Forensics tools compare
/// the intersection and report the rest instead of refusing.
struct PairingReport {
  std::vector<CheckpointPair> pairs;      ///< sorted by (iteration, rank)
  std::vector<CheckpointRef> only_in_a;   ///< present in run A only
  std::vector<CheckpointRef> only_in_b;   ///< present in run B only

  [[nodiscard]] bool ragged() const noexcept {
    return !only_in_a.empty() || !only_in_b.empty();
  }
};

class HistoryCatalog {
 public:
  explicit HistoryCatalog(std::filesystem::path root)
      : root_(std::move(root)) {}

  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

  /// Paths for a (run, iteration, rank); creates parent directories.
  repro::Result<CheckpointRef> make_ref(const std::string& run_id,
                                        std::uint64_t iteration,
                                        std::uint32_t rank) const;

  /// Same, without touching the filesystem.
  [[nodiscard]] CheckpointRef ref(const std::string& run_id,
                                  std::uint64_t iteration,
                                  std::uint32_t rank) const;

  /// Run ids present under the root, sorted.
  [[nodiscard]] repro::Result<std::vector<std::string>> runs() const;

  /// All checkpoints of one run, sorted by (iteration, rank).
  [[nodiscard]] repro::Result<std::vector<CheckpointRef>> checkpoints(
      const std::string& run_id) const;

  /// Pair two runs' histories. Errors if the histories do not cover the
  /// same (iteration, rank) set — the paper's model assumes aligned
  /// capture schedules.
  [[nodiscard]] repro::Result<std::vector<CheckpointPair>> pair_runs(
      const std::string& run_a, const std::string& run_b) const;

  /// Lenient variant: pairs the (iteration, rank) intersection and reports
  /// one-sided checkpoints instead of erroring. Still errors on I/O
  /// problems (unreadable run directories).
  [[nodiscard]] repro::Result<PairingReport> pair_runs_lenient(
      const std::string& run_a, const std::string& run_b) const;

 private:
  std::filesystem::path root_;
};

}  // namespace repro::ckpt
