// Configuration of the haccette mini-app (the HACC substitute).
#pragma once

#include <cstdint>

#include "common/status.hpp"

namespace repro::sim {

/// Sources of run-to-run nondeterminism, modeled after what the paper
/// attributes HACC's divergence to (concurrency-dependent floating-point
/// reduction order) plus a tunable jitter term so experiments can dial the
/// divergence magnitude against the swept error bounds.
struct NoiseConfig {
  /// Master switch. Off => the mini-app is bit-deterministic.
  bool enabled = false;

  /// Per-run seed (give each run a different value). Drives the deposit
  /// permutation and the jitter stream.
  std::uint64_t run_seed = 0;

  /// First iteration (1-based, matching capture iteration numbers) at which
  /// noise kicks in; earlier steps are bit-deterministic. Lets experiments
  /// inject divergence at a known point and check that comparison tools
  /// recover exactly that first-divergence iteration. 0 = from the start.
  std::uint64_t start_iteration = 0;

  /// Permute the mass-deposit accumulation order. This is the *real*
  /// nondeterminism mechanism: floating-point addition is not associative,
  /// so a different order yields slightly different mesh densities, which
  /// gravity then amplifies across steps.
  bool shuffle_deposit = true;

  /// Extra per-particle force jitter, uniform in [-magnitude, magnitude].
  /// Models scheduling-dependent error at a controllable scale; 0 disables.
  double jitter_magnitude = 0.0;

  /// Fraction of particles receiving a larger "hotspot" kick each step —
  /// produces the spatially clustered divergences (a halo forming in one
  /// run but not the other) that motivate locating differences.
  double hotspot_fraction = 0.0;
  double hotspot_magnitude = 0.0;
};

struct SimConfig {
  std::uint64_t num_particles = 1ULL << 15;
  std::uint32_t mesh_dim = 32;   ///< cells per side (power of two)
  double box_size = 64.0;        ///< periodic box edge length
  double time_step = 0.05;
  std::uint32_t steps = 50;      ///< the paper runs 50 P3M iterations
  double gravitational_constant = 0.8;
  /// Short-range particle-particle correction radius (in box units);
  /// 0 disables the PP phase (pure PM).
  double pp_cutoff = 0.0;
  std::uint64_t seed = 12345;    ///< initial conditions (same for all runs)
  NoiseConfig noise;
};

repro::Status validate(const SimConfig& config);

}  // namespace repro::sim
