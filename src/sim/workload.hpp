// Synthetic divergence workloads for the benchmark harnesses.
//
// The paper's figures sweep error bounds against checkpoints whose
// run-to-run deltas have a particular statistical shape (HACC's divergence
// is small-magnitude and spatially clustered). Driving every bench cell
// through the full mini-app would be slow and hard to control, so benches
// use this generator: run B is derived from run A by perturbing a chosen
// fraction of contiguous regions at chosen magnitudes. The mini-app remains
// the end-to-end path for the examples and integration tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace repro::sim {

struct DivergenceSpec {
  /// Fraction of the checkpoint's contiguous regions to perturb, in [0, 1].
  double region_fraction = 0.01;
  /// Values per perturbed contiguous region (clustering knob).
  std::uint64_t region_values = 1024;
  /// Perturbation amplitude: each touched value moves by a uniform draw
  /// from [magnitude/2, magnitude] (signed), so a sweep with error bound
  /// eps < magnitude/2 must flag every touched value and eps > magnitude
  /// must flag none.
  double magnitude = 1e-4;
  std::uint64_t seed = 7;
};

/// Smooth pseudo-physical base field: mixture of sinusoidal modes plus
/// seeded noise, values O(1) (so absolute error bounds 1e-3..1e-7 bite the
/// way they do on HACC coordinates).
std::vector<float> generate_field(std::uint64_t count, std::uint64_t seed);

/// Derive run B from run A in place.
void apply_divergence(std::span<float> values, const DivergenceSpec& spec);

/// Count of values whose |a - b| exceeds `bound` (ground truth helper).
std::uint64_t count_exceeding(std::span<const float> run_a,
                              std::span<const float> run_b, double bound);

}  // namespace repro::sim
