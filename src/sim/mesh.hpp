// Particle-mesh gravity solver: cloud-in-cell mass deposit, FFT Poisson
// solve with the discrete (sin^2) Green's function, finite-difference
// forces, and cloud-in-cell gather back to particles. The "PM" in P3M.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "sim/config.hpp"
#include "sim/fft.hpp"

namespace repro::sim {

/// SoA particle state (positions/velocities in box units, phi is the
/// gathered gravitational potential — the fields of Table 1).
struct Particles {
  std::vector<double> x, y, z;
  std::vector<double> vx, vy, vz;
  std::vector<double> phi;

  [[nodiscard]] std::size_t size() const noexcept { return x.size(); }
  void resize(std::size_t n);
};

class PmSolver {
 public:
  PmSolver(std::uint32_t mesh_dim, double box_size,
           double gravitational_constant);

  /// CIC-deposit particle mass onto the density mesh. `order` optionally
  /// permutes the accumulation sequence (nullptr = natural order); with
  /// floating-point '+', different orders give slightly different meshes —
  /// the modeled nondeterminism source.
  void deposit(const Particles& particles,
               std::span<const std::uint32_t> order);

  /// FFT Poisson solve of the deposited density into the potential mesh.
  repro::Status solve_potential();

  /// CIC-gather potential and finite-difference accelerations at each
  /// particle position into (ax, ay, az, phi).
  void gather(const Particles& particles, std::span<double> ax,
              std::span<double> ay, std::span<double> az,
              std::span<double> phi) const;

  [[nodiscard]] std::uint32_t mesh_dim() const noexcept { return n_; }
  [[nodiscard]] std::span<const double> density() const noexcept {
    return density_;
  }
  [[nodiscard]] std::span<const double> potential() const noexcept {
    return potential_;
  }

 private:
  [[nodiscard]] std::size_t idx(std::uint32_t x, std::uint32_t y,
                                std::uint32_t z) const noexcept {
    return (static_cast<std::size_t>(x) * n_ + y) * n_ + z;
  }

  std::uint32_t n_;
  double box_;
  double cell_;  ///< box_ / n_
  double gravity_;
  std::vector<double> density_;
  std::vector<double> potential_;
  std::vector<Complex> work_;
};

}  // namespace repro::sim
