#include "sim/hacc_lite.hpp"

#include <algorithm>
#include <cmath>

namespace repro::sim {

repro::Status validate(const SimConfig& config) {
  if (config.num_particles == 0) {
    return repro::invalid_argument("num_particles must be > 0");
  }
  if (!repro::is_pow2(config.mesh_dim) || config.mesh_dim < 4) {
    return repro::invalid_argument("mesh_dim must be a power of two >= 4");
  }
  if (!(config.box_size > 0)) {
    return repro::invalid_argument("box_size must be > 0");
  }
  if (!(config.time_step > 0)) {
    return repro::invalid_argument("time_step must be > 0");
  }
  if (config.pp_cutoff < 0 || config.pp_cutoff > config.box_size / 2) {
    return repro::invalid_argument("pp_cutoff must be in [0, box/2]");
  }
  return repro::Status::ok();
}

HaccLite::HaccLite(SimConfig config)
    : config_(config),
      solver_(config.mesh_dim, config.box_size,
              config.gravitational_constant),
      noise_rng_(config.noise.run_seed ^ 0x9e3779b97f4a7c15ULL) {}

repro::Status HaccLite::initialize() {
  REPRO_RETURN_IF_ERROR(validate(config_));
  const std::size_t count = config_.num_particles;
  particles_.resize(count);
  ax_.resize(count);
  ay_.resize(count);
  az_.resize(count);
  deposit_order_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    deposit_order_[i] = static_cast<std::uint32_t>(i);
  }

  // Zel'dovich-flavoured ICs: lattice positions + seeded random
  // displacement, small Gaussian velocities. Identical for every run with
  // the same config.seed — nondeterminism enters only through stepping.
  Xoshiro256 rng(config_.seed);
  const auto side = static_cast<std::size_t>(
      std::ceil(std::cbrt(static_cast<double>(count))));
  const double spacing = config_.box_size / static_cast<double>(side);
  const double displacement = 0.35 * spacing;
  const double velocity_scale = 0.05 * spacing / config_.time_step * 0.1;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t gx = i % side;
    const std::size_t gy = (i / side) % side;
    const std::size_t gz = i / (side * side) % side;
    auto jitter = [&] { return (rng.next_double() * 2.0 - 1.0) * displacement; };
    auto wrap = [&](double v) {
      v = std::fmod(v, config_.box_size);
      return v < 0 ? v + config_.box_size : v;
    };
    particles_.x[i] = wrap((gx + 0.5) * spacing + jitter());
    particles_.y[i] = wrap((gy + 0.5) * spacing + jitter());
    particles_.z[i] = wrap((gz + 0.5) * spacing + jitter());
    particles_.vx[i] = rng.next_gaussian() * velocity_scale;
    particles_.vy[i] = rng.next_gaussian() * velocity_scale;
    particles_.vz[i] = rng.next_gaussian() * velocity_scale;
    particles_.phi[i] = 0.0;
  }
  iteration_ = 0;
  return repro::Status::ok();
}

void HaccLite::apply_pp_correction(std::vector<double>& ax,
                                   std::vector<double>& ay,
                                   std::vector<double>& az) const {
  // Short-range pairwise softened attraction inside pp_cutoff, found via a
  // uniform cell list (cell edge >= cutoff). This is the "PP" of P3M; at
  // mini-app scale it mainly adds realistic local coupling.
  const double cutoff = config_.pp_cutoff;
  const double cutoff2 = cutoff * cutoff;
  const double box = config_.box_size;
  const auto cells = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(box / cutoff));
  const double cell_edge = box / cells;
  const double soften2 = 1e-4 * cutoff2;
  const double strength = 0.1 * config_.gravitational_constant;

  const std::size_t count = particles_.size();
  auto cell_of = [&](double v) {
    auto c = static_cast<std::uint32_t>(v / cell_edge);
    return c >= cells ? cells - 1 : c;
  };
  auto cell_index = [&](std::uint32_t cx, std::uint32_t cy, std::uint32_t cz) {
    return (static_cast<std::size_t>(cx) * cells + cy) * cells + cz;
  };

  // Bucket particles.
  std::vector<std::vector<std::uint32_t>> buckets(
      static_cast<std::size_t>(cells) * cells * cells);
  for (std::size_t p = 0; p < count; ++p) {
    buckets[cell_index(cell_of(particles_.x[p]), cell_of(particles_.y[p]),
                       cell_of(particles_.z[p]))]
        .push_back(static_cast<std::uint32_t>(p));
  }

  auto min_image = [&](double d) {
    if (d > box / 2) return d - box;
    if (d < -box / 2) return d + box;
    return d;
  };

  // Neighbor offsets along one axis, deduplicated so a grid narrower than
  // three cells does not visit (and double-count) the same cell twice.
  auto axis_neighbors = [&](std::uint32_t c) {
    std::vector<std::uint32_t> out;
    for (int d = -1; d <= 1; ++d) {
      const auto n = static_cast<std::uint32_t>(
          (static_cast<long>(c) + d + cells) % static_cast<long>(cells));
      if (std::find(out.begin(), out.end(), n) == out.end()) out.push_back(n);
    }
    return out;
  };

  for (std::size_t p = 0; p < count; ++p) {
    const std::uint32_t cx = cell_of(particles_.x[p]);
    const std::uint32_t cy = cell_of(particles_.y[p]);
    const std::uint32_t cz = cell_of(particles_.z[p]);
    for (const std::uint32_t nx : axis_neighbors(cx)) {
      for (const std::uint32_t ny : axis_neighbors(cy)) {
        for (const std::uint32_t nz : axis_neighbors(cz)) {
          for (const std::uint32_t q : buckets[cell_index(nx, ny, nz)]) {
            if (q == p) continue;
            const double rx = min_image(particles_.x[q] - particles_.x[p]);
            const double ry = min_image(particles_.y[q] - particles_.y[p]);
            const double rz = min_image(particles_.z[q] - particles_.z[p]);
            const double r2 = rx * rx + ry * ry + rz * rz;
            if (r2 > cutoff2) continue;
            const double inv_r3 =
                1.0 / ((r2 + soften2) * std::sqrt(r2 + soften2));
            ax[p] += strength * rx * inv_r3;
            ay[p] += strength * ry * inv_r3;
            az[p] += strength * rz * inv_r3;
          }
        }
      }
    }
  }
}

repro::Status HaccLite::step() {
  const std::size_t count = particles_.size();
  const NoiseConfig& noise = config_.noise;
  // This step produces iteration_ + 1; noise before start_iteration stays
  // dormant so runs agree bit-for-bit up to the injection point.
  const bool noise_active =
      noise.enabled && iteration_ + 1 >= noise.start_iteration;

  // Deposit order: natural (deterministic) or permuted (models the
  // concurrency-dependent reduction order).
  std::span<const std::uint32_t> order;
  if (noise_active && noise.shuffle_deposit) {
    // Fisher-Yates with the per-run noise stream.
    for (std::size_t i = count; i > 1; --i) {
      const std::size_t j = noise_rng_.next_below(i);
      std::swap(deposit_order_[i - 1], deposit_order_[j]);
    }
    order = deposit_order_;
  }

  solver_.deposit(particles_, order);
  REPRO_RETURN_IF_ERROR(solver_.solve_potential());
  solver_.gather(particles_, ax_, ay_, az_, particles_.phi);

  if (config_.pp_cutoff > 0) apply_pp_correction(ax_, ay_, az_);

  if (noise_active && noise.jitter_magnitude > 0) {
    for (std::size_t p = 0; p < count; ++p) {
      ax_[p] += (noise_rng_.next_double() * 2 - 1) * noise.jitter_magnitude;
      ay_[p] += (noise_rng_.next_double() * 2 - 1) * noise.jitter_magnitude;
      az_[p] += (noise_rng_.next_double() * 2 - 1) * noise.jitter_magnitude;
    }
  }
  if (noise_active && noise.hotspot_fraction > 0 &&
      noise.hotspot_magnitude > 0) {
    const auto kicks = static_cast<std::size_t>(
        noise.hotspot_fraction * static_cast<double>(count));
    for (std::size_t k = 0; k < kicks; ++k) {
      const std::size_t p = noise_rng_.next_below(count);
      ax_[p] += (noise_rng_.next_double() * 2 - 1) * noise.hotspot_magnitude;
      ay_[p] += (noise_rng_.next_double() * 2 - 1) * noise.hotspot_magnitude;
      az_[p] += (noise_rng_.next_double() * 2 - 1) * noise.hotspot_magnitude;
    }
  }

  // Leapfrog kick + drift with periodic wrap.
  const double dt = config_.time_step;
  const double box = config_.box_size;
  auto wrap = [box](double v) {
    v = std::fmod(v, box);
    return v < 0 ? v + box : v;
  };
  for (std::size_t p = 0; p < count; ++p) {
    particles_.vx[p] += ax_[p] * dt;
    particles_.vy[p] += ay_[p] * dt;
    particles_.vz[p] += az_[p] * dt;
    particles_.x[p] = wrap(particles_.x[p] + particles_.vx[p] * dt);
    particles_.y[p] = wrap(particles_.y[p] + particles_.vy[p] * dt);
    particles_.z[p] = wrap(particles_.z[p] + particles_.vz[p] * dt);
  }
  ++iteration_;
  return repro::Status::ok();
}

repro::Status HaccLite::run(
    std::span<const std::uint64_t> capture_iterations,
    const std::function<repro::Status(std::uint64_t)>& hook) {
  for (std::uint32_t s = 0; s < config_.steps; ++s) {
    REPRO_RETURN_IF_ERROR(step());
    if (hook && std::find(capture_iterations.begin(),
                          capture_iterations.end(),
                          iteration_) != capture_iterations.end()) {
      REPRO_RETURN_IF_ERROR(hook(iteration_));
    }
  }
  return repro::Status::ok();
}

repro::Status HaccLite::add_checkpoint_fields(
    ckpt::CheckpointWriter& writer) const {
  const std::size_t count = particles_.size();
  std::vector<float> f32(count);
  auto narrow = [&](const std::vector<double>& src) {
    for (std::size_t i = 0; i < count; ++i) {
      f32[i] = static_cast<float>(src[i]);
    }
    return std::span<const float>(f32);
  };
  REPRO_RETURN_IF_ERROR(writer.add_field_f32("X", narrow(particles_.x)));
  REPRO_RETURN_IF_ERROR(writer.add_field_f32("Y", narrow(particles_.y)));
  REPRO_RETURN_IF_ERROR(writer.add_field_f32("Z", narrow(particles_.z)));
  REPRO_RETURN_IF_ERROR(writer.add_field_f32("VX", narrow(particles_.vx)));
  REPRO_RETURN_IF_ERROR(writer.add_field_f32("VY", narrow(particles_.vy)));
  REPRO_RETURN_IF_ERROR(writer.add_field_f32("VZ", narrow(particles_.vz)));
  REPRO_RETURN_IF_ERROR(writer.add_field_f32("PHI", narrow(particles_.phi)));
  return repro::Status::ok();
}

repro::Status HaccLite::restore_from_checkpoint(
    const ckpt::CheckpointReader& reader) {
  const std::size_t count = config_.num_particles;
  if (reader.data_bytes() != checkpoint_bytes(count)) {
    return repro::failed_precondition(
        "checkpoint holds a different particle count");
  }
  // Allocate state without re-randomizing it.
  particles_.resize(count);
  ax_.resize(count);
  ay_.resize(count);
  az_.resize(count);
  deposit_order_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    deposit_order_[i] = static_cast<std::uint32_t>(i);
  }

  auto load_field = [&](const char* name,
                        std::vector<double>& dest) -> repro::Status {
    REPRO_ASSIGN_OR_RETURN(const std::vector<std::uint8_t> bytes,
                           reader.read_field(name));
    if (bytes.size() != count * sizeof(float)) {
      return repro::corrupt_data(std::string("field ") + name +
                                 " has unexpected size");
    }
    const auto* values = reinterpret_cast<const float*>(bytes.data());
    for (std::size_t i = 0; i < count; ++i) {
      dest[i] = static_cast<double>(values[i]);
    }
    return repro::Status::ok();
  };
  REPRO_RETURN_IF_ERROR(load_field("X", particles_.x));
  REPRO_RETURN_IF_ERROR(load_field("Y", particles_.y));
  REPRO_RETURN_IF_ERROR(load_field("Z", particles_.z));
  REPRO_RETURN_IF_ERROR(load_field("VX", particles_.vx));
  REPRO_RETURN_IF_ERROR(load_field("VY", particles_.vy));
  REPRO_RETURN_IF_ERROR(load_field("VZ", particles_.vz));
  REPRO_RETURN_IF_ERROR(load_field("PHI", particles_.phi));
  iteration_ = reader.info().iteration;
  return repro::Status::ok();
}

}  // namespace repro::sim
