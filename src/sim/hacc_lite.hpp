// haccette: a self-contained P3M N-body mini-app standing in for HACC.
//
// The comparison runtime only ever sees checkpoint files of F32 particle
// fields (Table 1: X, Y, Z, VX, VY, VZ, PHI), so what the substitute must
// reproduce is (a) that field layout and (b) HACC's run-to-run divergence
// character: tiny floating-point reduction-order differences that chaotic
// gravitational dynamics amplify into spatially clustered discrepancies.
// haccette implements the same algorithmic skeleton HACC's evaluation used
// (particle-particle particle-mesh over 50 iterations) at laptop scale, with
// the nondeterminism injectable and tunable (NoiseConfig).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ckpt/format.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "sim/config.hpp"
#include "sim/mesh.hpp"

namespace repro::sim {

class HaccLite {
 public:
  explicit HaccLite(SimConfig config);

  /// Deterministic initial conditions from config.seed: particles on a
  /// jittered lattice with Gaussian velocities (identical for both runs).
  repro::Status initialize();

  /// One leapfrog step: PM deposit/solve/gather (+ optional PP correction),
  /// kick, drift with periodic wrap. Applies configured nondeterminism.
  repro::Status step();

  /// Run `steps` iterations, invoking `hook(iteration)` after each
  /// iteration listed in `capture_iterations` completes.
  repro::Status run(std::span<const std::uint64_t> capture_iterations,
                    const std::function<repro::Status(std::uint64_t)>& hook);

  /// Populate a checkpoint writer with the Table 1 fields (F32).
  repro::Status add_checkpoint_fields(ckpt::CheckpointWriter& writer) const;

  /// Suspend-resume (the checkpointing use case the paper's Section 1
  /// cites): restore particle state from a previously captured checkpoint
  /// and continue stepping from its iteration. The checkpoint must come
  /// from a simulation of the same particle count. Note the F32 capture
  /// narrows the internal F64 state, so a resumed run reproduces the
  /// original at F32 precision, not bitwise in F64 (tested both ways).
  repro::Status restore_from_checkpoint(const ckpt::CheckpointReader& reader);

  [[nodiscard]] const Particles& particles() const noexcept {
    return particles_;
  }
  [[nodiscard]] const SimConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::uint64_t iteration() const noexcept { return iteration_; }

  /// Data-section bytes of a checkpoint of this problem size (7 F32 fields).
  [[nodiscard]] static std::uint64_t checkpoint_bytes(
      std::uint64_t num_particles) noexcept {
    return num_particles * 7 * sizeof(float);
  }

 private:
  void apply_pp_correction(std::vector<double>& ax, std::vector<double>& ay,
                           std::vector<double>& az) const;

  SimConfig config_;
  PmSolver solver_;
  Particles particles_;
  Xoshiro256 noise_rng_;
  std::uint64_t iteration_ = 0;
  std::vector<std::uint32_t> deposit_order_;
  std::vector<double> ax_, ay_, az_;
};

}  // namespace repro::sim
