#include "sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/rng.hpp"

namespace repro::sim {

std::vector<float> generate_field(std::uint64_t count, std::uint64_t seed) {
  std::vector<float> values(count);
  repro::Xoshiro256 rng(seed);
  // Three incommensurate modes + noise keeps neighbouring chunks distinct
  // (so hash pruning cannot cheat via repeated content).
  const double f1 = 2 * std::numbers::pi / 937.0;
  const double f2 = 2 * std::numbers::pi / 104729.0;
  const double f3 = 2 * std::numbers::pi / 17.0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto t = static_cast<double>(i);
    const double smooth =
        std::sin(t * f1) + 0.5 * std::sin(t * f2) + 0.25 * std::sin(t * f3);
    values[i] = static_cast<float>(smooth + 0.05 * rng.next_gaussian());
  }
  return values;
}

void apply_divergence(std::span<float> values, const DivergenceSpec& spec) {
  if (values.empty() || spec.region_fraction <= 0 || spec.magnitude <= 0) {
    return;
  }
  const std::uint64_t region = std::max<std::uint64_t>(1, spec.region_values);
  const std::uint64_t num_regions =
      (values.size() + region - 1) / region;
  auto touched = static_cast<std::uint64_t>(
      std::llround(spec.region_fraction * static_cast<double>(num_regions)));
  touched = std::min(touched, num_regions);
  if (touched == 0) return;

  // Choose `touched` distinct regions via partial Fisher-Yates.
  std::vector<std::uint64_t> regions(num_regions);
  for (std::uint64_t i = 0; i < num_regions; ++i) regions[i] = i;
  repro::Xoshiro256 rng(spec.seed);
  for (std::uint64_t i = 0; i < touched; ++i) {
    const std::uint64_t j = i + rng.next_below(num_regions - i);
    std::swap(regions[i], regions[j]);
  }

  for (std::uint64_t r = 0; r < touched; ++r) {
    const std::uint64_t begin = regions[r] * region;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + region, values.size());
    for (std::uint64_t i = begin; i < end; ++i) {
      // Amplitude in [magnitude/2, magnitude], random sign: decisively
      // above eps when eps <= magnitude/2, decisively below when
      // eps >= magnitude (modulo F32 representation error).
      const double amplitude =
          spec.magnitude * (0.5 + 0.5 * rng.next_double());
      const double sign = rng.next_double() < 0.5 ? -1.0 : 1.0;
      values[i] = static_cast<float>(static_cast<double>(values[i]) +
                                     sign * amplitude);
    }
  }
}

std::uint64_t count_exceeding(std::span<const float> run_a,
                              std::span<const float> run_b, double bound) {
  const std::size_t count = std::min(run_a.size(), run_b.size());
  std::uint64_t exceeding = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const double delta = std::abs(static_cast<double>(run_a[i]) -
                                  static_cast<double>(run_b[i]));
    if (delta > bound) ++exceeding;
  }
  return exceeding;
}

}  // namespace repro::sim
