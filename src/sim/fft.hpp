// Radix-2 complex FFT (iterative Cooley-Tukey) and a 3D transform built on
// it. Self-contained so the particle-mesh Poisson solve needs no external
// FFT library. Sizes are restricted to powers of two.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace repro::sim {

using Complex = std::complex<double>;

/// In-place FFT of a power-of-two-length signal. `inverse` applies the
/// conjugate transform and divides by N (full round trip is the identity).
repro::Status fft_inplace(std::span<Complex> data, bool inverse);

/// 3D FFT over an n*n*n cube stored row-major (index = (x*n + y)*n + z).
repro::Status fft3d_inplace(std::span<Complex> cube, std::uint32_t n,
                            bool inverse);

}  // namespace repro::sim
