#include "sim/mesh.hpp"

#include <cmath>
#include <numbers>

namespace repro::sim {

void Particles::resize(std::size_t n) {
  x.resize(n);
  y.resize(n);
  z.resize(n);
  vx.resize(n);
  vy.resize(n);
  vz.resize(n);
  phi.resize(n);
}

PmSolver::PmSolver(std::uint32_t mesh_dim, double box_size,
                   double gravitational_constant)
    : n_(mesh_dim),
      box_(box_size),
      cell_(box_size / mesh_dim),
      gravity_(gravitational_constant),
      density_(static_cast<std::size_t>(mesh_dim) * mesh_dim * mesh_dim),
      potential_(density_.size()),
      work_(density_.size()) {}

namespace {

/// CIC weights for one coordinate: cell index, neighbor index, weights.
struct CicAxis {
  std::uint32_t i0, i1;
  double w0, w1;
};

CicAxis cic_axis(double position, double cell, std::uint32_t n) noexcept {
  const double scaled = position / cell - 0.5;  // cell-centered grid
  double base = std::floor(scaled);
  const double frac = scaled - base;
  long i = static_cast<long>(base);
  // Periodic wrap (positions are kept in [0, box), so i is in [-1, n-1]).
  const std::uint32_t i0 =
      static_cast<std::uint32_t>((i % static_cast<long>(n) + n) %
                                 static_cast<long>(n));
  const std::uint32_t i1 = (i0 + 1) % n;
  return {i0, i1, 1.0 - frac, frac};
}

}  // namespace

void PmSolver::deposit(const Particles& particles,
                       std::span<const std::uint32_t> order) {
  std::fill(density_.begin(), density_.end(), 0.0);
  const std::size_t count = particles.size();
  // Mean density subtracted later via the k=0 mode; each particle deposits
  // unit mass spread over its 8 surrounding cells.
  for (std::size_t step = 0; step < count; ++step) {
    const std::size_t p = order.empty() ? step : order[step];
    const CicAxis ax = cic_axis(particles.x[p], cell_, n_);
    const CicAxis ay = cic_axis(particles.y[p], cell_, n_);
    const CicAxis az = cic_axis(particles.z[p], cell_, n_);
    density_[idx(ax.i0, ay.i0, az.i0)] += ax.w0 * ay.w0 * az.w0;
    density_[idx(ax.i0, ay.i0, az.i1)] += ax.w0 * ay.w0 * az.w1;
    density_[idx(ax.i0, ay.i1, az.i0)] += ax.w0 * ay.w1 * az.w0;
    density_[idx(ax.i0, ay.i1, az.i1)] += ax.w0 * ay.w1 * az.w1;
    density_[idx(ax.i1, ay.i0, az.i0)] += ax.w1 * ay.w0 * az.w0;
    density_[idx(ax.i1, ay.i0, az.i1)] += ax.w1 * ay.w0 * az.w1;
    density_[idx(ax.i1, ay.i1, az.i0)] += ax.w1 * ay.w1 * az.w0;
    density_[idx(ax.i1, ay.i1, az.i1)] += ax.w1 * ay.w1 * az.w1;
  }
  // Convert counts to density contrast per cell volume.
  const double cell_volume = cell_ * cell_ * cell_;
  for (auto& value : density_) value /= cell_volume;
}

repro::Status PmSolver::solve_potential() {
  for (std::size_t i = 0; i < density_.size(); ++i) {
    work_[i] = Complex{density_[i], 0.0};
  }
  REPRO_RETURN_IF_ERROR(fft3d_inplace(work_, n_, /*inverse=*/false));

  // Discrete Green's function: phi_k = -4 pi G rho_k / k_eff^2 with
  // k_eff^2 = (2/h)^2 * sum_axis sin^2(pi m / n) — the eigenvalues of the
  // 7-point Laplacian, consistent with the finite-difference force gather.
  const double four_pi_g = 4.0 * std::numbers::pi * gravity_;
  const double inv_h2 = 1.0 / (cell_ * cell_);
  auto sin2 = [this](std::uint32_t m) {
    const double s = std::sin(std::numbers::pi * m / n_);
    return s * s;
  };
  for (std::uint32_t x = 0; x < n_; ++x) {
    for (std::uint32_t y = 0; y < n_; ++y) {
      for (std::uint32_t z = 0; z < n_; ++z) {
        const std::size_t i = idx(x, y, z);
        if (x == 0 && y == 0 && z == 0) {
          work_[i] = Complex{0.0, 0.0};  // remove mean (Jeans swindle)
          continue;
        }
        const double k_eff2 = 4.0 * inv_h2 * (sin2(x) + sin2(y) + sin2(z));
        work_[i] *= -four_pi_g / k_eff2;
      }
    }
  }

  REPRO_RETURN_IF_ERROR(fft3d_inplace(work_, n_, /*inverse=*/true));
  for (std::size_t i = 0; i < potential_.size(); ++i) {
    potential_[i] = work_[i].real();
  }
  return repro::Status::ok();
}

void PmSolver::gather(const Particles& particles, std::span<double> ax_out,
                      std::span<double> ay_out, std::span<double> az_out,
                      std::span<double> phi_out) const {
  const double inv_2h = 1.0 / (2.0 * cell_);
  auto wrap = [this](std::uint32_t i, int d) {
    return static_cast<std::uint32_t>(
        (static_cast<long>(i) + d + n_) % static_cast<long>(n_));
  };
  // Acceleration at a grid point: a = -grad(phi), central differences.
  auto accel = [&](std::uint32_t x, std::uint32_t y, std::uint32_t z,
                   double* out) {
    out[0] = -(potential_[idx(wrap(x, 1), y, z)] -
               potential_[idx(wrap(x, -1), y, z)]) *
             inv_2h;
    out[1] = -(potential_[idx(x, wrap(y, 1), z)] -
               potential_[idx(x, wrap(y, -1), z)]) *
             inv_2h;
    out[2] = -(potential_[idx(x, y, wrap(z, 1))] -
               potential_[idx(x, y, wrap(z, -1))]) *
             inv_2h;
  };

  const std::size_t count = particles.size();
  for (std::size_t p = 0; p < count; ++p) {
    const CicAxis cx = cic_axis(particles.x[p], cell_, n_);
    const CicAxis cy = cic_axis(particles.y[p], cell_, n_);
    const CicAxis cz = cic_axis(particles.z[p], cell_, n_);

    double acc[3] = {0, 0, 0};
    double phi = 0;
    const std::uint32_t xs[2] = {cx.i0, cx.i1};
    const std::uint32_t ys[2] = {cy.i0, cy.i1};
    const std::uint32_t zs[2] = {cz.i0, cz.i1};
    const double wx[2] = {cx.w0, cx.w1};
    const double wy[2] = {cy.w0, cy.w1};
    const double wz[2] = {cz.w0, cz.w1};
    for (int a = 0; a < 2; ++a) {
      for (int b = 0; b < 2; ++b) {
        for (int c = 0; c < 2; ++c) {
          const double w = wx[a] * wy[b] * wz[c];
          double cell_acc[3];
          accel(xs[a], ys[b], zs[c], cell_acc);
          acc[0] += w * cell_acc[0];
          acc[1] += w * cell_acc[1];
          acc[2] += w * cell_acc[2];
          phi += w * potential_[idx(xs[a], ys[b], zs[c])];
        }
      }
    }
    ax_out[p] = acc[0];
    ay_out[p] = acc[1];
    az_out[p] = acc[2];
    phi_out[p] = phi;
  }
}

}  // namespace repro::sim
