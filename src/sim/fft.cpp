#include "sim/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/bytes.hpp"

namespace repro::sim {

repro::Status fft_inplace(std::span<Complex> data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || !repro::is_pow2(n)) {
    return repro::invalid_argument("FFT length must be a power of two");
  }

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; (j & bit) != 0; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  // Butterflies.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const Complex wlen{std::cos(angle), std::sin(angle)};
    for (std::size_t i = 0; i < n; i += len) {
      Complex w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = data[i + k];
        const Complex v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double scale = 1.0 / static_cast<double>(n);
    for (auto& value : data) value *= scale;
  }
  return repro::Status::ok();
}

repro::Status fft3d_inplace(std::span<Complex> cube, std::uint32_t n,
                            bool inverse) {
  const std::size_t total = static_cast<std::size_t>(n) * n * n;
  if (cube.size() != total) {
    return repro::invalid_argument("cube size must be n^3");
  }
  if (!repro::is_pow2(n)) {
    return repro::invalid_argument("mesh dimension must be a power of two");
  }

  std::vector<Complex> line(n);
  auto idx = [n](std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (static_cast<std::size_t>(x) * n + y) * n + z;
  };

  // Transform along z (contiguous lines).
  for (std::uint32_t x = 0; x < n; ++x) {
    for (std::uint32_t y = 0; y < n; ++y) {
      REPRO_RETURN_IF_ERROR(
          fft_inplace(cube.subspan(idx(x, y, 0), n), inverse));
    }
  }
  // Transform along y.
  for (std::uint32_t x = 0; x < n; ++x) {
    for (std::uint32_t z = 0; z < n; ++z) {
      for (std::uint32_t y = 0; y < n; ++y) line[y] = cube[idx(x, y, z)];
      REPRO_RETURN_IF_ERROR(fft_inplace(line, inverse));
      for (std::uint32_t y = 0; y < n; ++y) cube[idx(x, y, z)] = line[y];
    }
  }
  // Transform along x.
  for (std::uint32_t y = 0; y < n; ++y) {
    for (std::uint32_t z = 0; z < n; ++z) {
      for (std::uint32_t x = 0; x < n; ++x) line[x] = cube[idx(x, y, z)];
      REPRO_RETURN_IF_ERROR(fft_inplace(line, inverse));
      for (std::uint32_t x = 0; x < n; ++x) cube[idx(x, y, z)] = line[x];
    }
  }
  return repro::Status::ok();
}

}  // namespace repro::sim
